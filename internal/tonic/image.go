package tonic

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"djinn/internal/models"
	"djinn/internal/service"
)

// imageMean is the per-channel training-set mean subtracted during
// preprocessing (the ImageNet BGR mean Caffe uses, rescaled to [0,1]).
var imageMean = [3]float32{0.407, 0.458, 0.485}

// ToTensor bilinearly resizes an image to w×h and lays it out as CHW
// float32 planes with mean subtraction — Caffe's image preprocessing.
func ToTensor(img image.Image, w, h int, mean [3]float32) []float32 {
	b := img.Bounds()
	out := make([]float32, 3*w*h)
	sw := float64(b.Dx()) / float64(w)
	sh := float64(b.Dy()) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Bilinear sample at the source-space centre of this pixel.
			fx := (float64(x)+0.5)*sw - 0.5
			fy := (float64(y)+0.5)*sh - 0.5
			r, g, bl := bilinear(img, fx, fy)
			out[0*w*h+y*w+x] = r - mean[0]
			out[1*w*h+y*w+x] = g - mean[1]
			out[2*w*h+y*w+x] = bl - mean[2]
		}
	}
	return out
}

func bilinear(img image.Image, fx, fy float64) (r, g, b float32) {
	bounds := img.Bounds()
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0 := clamp(int(fx), bounds.Min.X, bounds.Max.X-1)
	y0 := clamp(int(fy), bounds.Min.Y, bounds.Max.Y-1)
	x1 := clamp(x0+1, bounds.Min.X, bounds.Max.X-1)
	y1 := clamp(y0+1, bounds.Min.Y, bounds.Max.Y-1)
	dx := float32(fx - float64(x0))
	dy := float32(fy - float64(y0))
	if dx < 0 {
		dx = 0
	}
	if dy < 0 {
		dy = 0
	}
	sample := func(x, y int) (float32, float32, float32) {
		cr, cg, cb, _ := img.At(x, y).RGBA()
		return float32(cr) / 65535, float32(cg) / 65535, float32(cb) / 65535
	}
	r00, g00, b00 := sample(x0, y0)
	r10, g10, b10 := sample(x1, y0)
	r01, g01, b01 := sample(x0, y1)
	r11, g11, b11 := sample(x1, y1)
	lerp := func(a, b, t float32) float32 { return a + (b-a)*t }
	r = lerp(lerp(r00, r10, dx), lerp(r01, r11, dx), dy)
	g = lerp(lerp(g00, g10, dx), lerp(g01, g11, dx), dy)
	b = lerp(lerp(b00, b10, dx), lerp(b01, b11, dx), dy)
	return r, g, b
}

// IMC is the image-classification application (AlexNet over 1000
// classes).
type IMC struct{ backend service.Backend }

// NewIMC creates the application over a DjiNN backend.
func NewIMC(b service.Backend) *IMC { return &IMC{backend: b} }

// Classify preprocesses one image (resize to 227×227, mean
// subtraction), queries the service, and returns the top prediction.
func (a *IMC) Classify(img image.Image) (Prediction, error) {
	in := ToTensor(img, 227, 227, imageMean)
	out, err := a.backend.Infer(ServiceName(models.IMC), in)
	if err != nil {
		return Prediction{}, err
	}
	return argmaxPrediction(out, ImageNetLabel), nil
}

// DIG is the digit-recognition application (MNIST). One service query
// carries 100 digit images (Table 3).
type DIG struct{ backend service.Backend }

// NewDIG creates the application over a DjiNN backend.
func NewDIG(b service.Backend) *DIG { return &DIG{backend: b} }

// Recognize classifies a batch of 28×28 greyscale digit images given
// as [0,1] intensity arrays.
func (a *DIG) Recognize(digits [][]float32) ([]Prediction, error) {
	const px = 28 * 28
	in := make([]float32, 0, len(digits)*px)
	for i, d := range digits {
		if len(d) != px {
			return nil, fmt.Errorf("tonic: digit %d has %d pixels, want %d", i, len(d), px)
		}
		in = append(in, d...)
	}
	out, err := a.backend.Infer(ServiceName(models.DIG), in)
	if err != nil {
		return nil, err
	}
	preds := make([]Prediction, len(digits))
	for i := range digits {
		preds[i] = argmaxPrediction(out[i*10:(i+1)*10], func(c int) string {
			return fmt.Sprintf("%d", c)
		})
	}
	return preds, nil
}

// FACE is the facial-recognition application (DeepFace over the 83
// PubFig83+LFW identities).
type FACE struct{ backend service.Backend }

// NewFACE creates the application over a DjiNN backend.
func NewFACE(b service.Backend) *FACE { return &FACE{backend: b} }

// Identify aligns a face image (centre crop to square, resize to
// 152×152 — the 2-D alignment stage of the DeepFace pipeline) and
// predicts the identity among the 83 celebrity classes (the classifier
// layer is DeepFace's 4030-way layer; FACE reads its first 83 outputs,
// see models.FaceClasses).
func (a *FACE) Identify(img image.Image) (Prediction, error) {
	in := ToTensor(centerSquare(img), 152, 152, imageMean)
	out, err := a.backend.Infer(ServiceName(models.FACE), in)
	if err != nil {
		return Prediction{}, err
	}
	return argmaxPrediction(out[:models.FaceClasses], FaceLabel), nil
}

// centerSquare crops the largest centred square from an image.
func centerSquare(img image.Image) image.Image {
	b := img.Bounds()
	side := b.Dx()
	if b.Dy() < side {
		side = b.Dy()
	}
	x0 := b.Min.X + (b.Dx()-side)/2
	y0 := b.Min.Y + (b.Dy()-side)/2
	return &croppedImage{img: img, rect: image.Rect(x0, y0, x0+side, y0+side)}
}

type croppedImage struct {
	img  image.Image
	rect image.Rectangle
}

func (c *croppedImage) Bounds() image.Rectangle { return c.rect }
func (c *croppedImage) ColorModel() color.Model { return c.img.ColorModel() }
func (c *croppedImage) At(x, y int) color.Color { return c.img.At(x, y) }

// ClassifyTopK returns the k most probable ImageNet classes for an
// image, descending by probability.
func (a *IMC) ClassifyTopK(img image.Image, k int) ([]Prediction, error) {
	in := ToTensor(img, 227, 227, imageMean)
	out, err := a.backend.Infer(ServiceName(models.IMC), in)
	if err != nil {
		return nil, err
	}
	return topK(out, k, ImageNetLabel), nil
}

// ClassifyPNG decodes a PNG image and classifies it.
func (a *IMC) ClassifyPNG(r io.Reader) (Prediction, error) {
	img, err := png.Decode(r)
	if err != nil {
		return Prediction{}, fmt.Errorf("tonic: decoding PNG: %w", err)
	}
	return a.Classify(img)
}
