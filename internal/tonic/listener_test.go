package tonic

import "net"

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
