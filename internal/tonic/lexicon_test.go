package tonic

import (
	"strings"
	"testing"
)

// phoneLL builds synthetic per-frame log-likelihoods strongly favouring
// a phone sequence, framesPer frames per phone.
func phoneLL(t *testing.T, phones []string, framesPer int) [][]float32 {
	t.Helper()
	idx := map[string]int{}
	for i, p := range Phones {
		idx[p] = i
	}
	var out [][]float32
	for _, p := range phones {
		pi, ok := idx[p]
		if !ok {
			t.Fatalf("unknown phone %q", p)
		}
		for f := 0; f < framesPer; f++ {
			row := make([]float32, NumPhones)
			for i := range row {
				row[i] = -8
			}
			row[pi] = -0.1
			out = append(out, row)
		}
	}
	return out
}

func TestLexiconDecodeSingleWord(t *testing.T) {
	lex := DefaultLexicon()
	// "hello" = hh eh l ow.
	ll := phoneLL(t, []string{"hh", "eh", "l", "ow"}, 4)
	words := lex.Decode(ll, 24)
	if len(words) != 1 || words[0] != "hello" {
		t.Fatalf("decoded %v, want [hello]", words)
	}
}

func TestLexiconDecodeWordSequence(t *testing.T) {
	lex := DefaultLexicon()
	// "hello world": hh eh l ow | w er l d, with silence between.
	seq := []string{"hh", "eh", "l", "ow", "sil", "w", "er", "l", "d"}
	words := lex.Decode(phoneLL(t, seq, 5), 32)
	got := strings.Join(words, " ")
	if got != "hello world" {
		t.Fatalf("decoded %q, want \"hello world\"", got)
	}
}

func TestLexiconDecodePrefixWords(t *testing.T) {
	// "no" (n ow) is a prefix-sharing competitor of "new" (n uw): the
	// evidence must pick the right one.
	lex := DefaultLexicon()
	if got := lex.Decode(phoneLL(t, []string{"n", "ow"}, 5), 24); len(got) != 1 || got[0] != "no" {
		t.Fatalf("decoded %v, want [no]", got)
	}
	if got := lex.Decode(phoneLL(t, []string{"n", "uw"}, 5), 24); len(got) != 1 || got[0] != "new" {
		t.Fatalf("decoded %v, want [new]", got)
	}
}

func TestLexiconDecodeSilenceOnly(t *testing.T) {
	lex := DefaultLexicon()
	words := lex.Decode(phoneLL(t, []string{"sil"}, 20), 24)
	if len(words) != 0 {
		t.Fatalf("silence decoded as %v", words)
	}
}

func TestLexiconDecodeDeterministic(t *testing.T) {
	lex := DefaultLexicon()
	seq := []string{"y", "eh", "s", "sil", "n", "ow"}
	a := lex.Decode(phoneLL(t, seq, 4), 16)
	b := lex.Decode(phoneLL(t, seq, 4), 16)
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatalf("nondeterministic decode: %v vs %v", a, b)
	}
}

func TestLexiconBeamWidthTradeoff(t *testing.T) {
	// A wider beam never scores worse on a decodable sequence.
	lex := DefaultLexicon()
	seq := []string{"p", "l", "ey", "sil", "m", "y", "uw", "z", "ih", "k"}
	narrow := lex.Decode(phoneLL(t, seq, 4), 2)
	wide := lex.Decode(phoneLL(t, seq, 4), 64)
	if got := strings.Join(wide, " "); got != "play music" {
		t.Fatalf("wide beam decoded %q, want \"play music\"", got)
	}
	// The narrow beam may miss words but must not invent longer junk.
	if len(narrow) > len(wide) {
		t.Fatalf("narrow beam produced more words (%v) than wide (%v)", narrow, wide)
	}
}

func TestNewLexiconRejectsUnknownPhone(t *testing.T) {
	if _, err := NewLexicon(map[string]string{"x": "zz qq"}); err == nil {
		t.Fatal("expected unknown-phone error")
	}
}

func TestLexiconEmptyInput(t *testing.T) {
	if got := DefaultLexicon().Decode(nil, 8); got != nil {
		t.Fatalf("empty input decoded as %v", got)
	}
}
