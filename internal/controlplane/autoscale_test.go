package controlplane

import (
	"testing"
	"time"
)

// The autoscaler tests drive the controller with an explicit fake
// clock — the same pure-function discipline as the AIMD batch
// controller's tests: no sleeps, every decision replayable.

func testScaler() *Autoscaler {
	return NewAutoscaler(AutoscaleConfig{
		Min: 1, Max: 4,
		UpAfter: 2, DownAfter: 3,
		UpCooldown: 2 * time.Second, DownCooldown: 10 * time.Second,
	})
}

var epoch = time.Unix(1_700_000_000, 0)

func hot() Observation {
	return Observation{ShedRate: 0.2, P99: 45 * time.Millisecond, SLO: 50 * time.Millisecond}
}

func cold() Observation {
	return Observation{ShedRate: 0, P99: 5 * time.Millisecond, SLO: 50 * time.Millisecond}
}

func neutral() Observation {
	// No sheds but p99 in the dead band between the low and high marks.
	return Observation{ShedRate: 0, P99: 35 * time.Millisecond, SLO: 50 * time.Millisecond}
}

// TestScaleUpOnSustainedShed: UpAfter consecutive hot intervals add a
// replica; a single blip does not.
func TestScaleUpOnSustainedShed(t *testing.T) {
	as := testScaler()
	now := epoch

	if dec := as.Observe("imc", now, hot()); dec.Changed {
		t.Fatal("scaled up after one hot interval (UpAfter=2)")
	}
	now = now.Add(time.Second)
	dec := as.Observe("imc", now, hot())
	if !dec.Changed || dec.Count != 2 {
		t.Fatalf("after 2 hot intervals: %+v, want count 2", dec)
	}

	// A blip: one hot, then neutral — the streak resets.
	as2 := testScaler()
	as2.Observe("imc", epoch, hot())
	as2.Observe("imc", epoch.Add(time.Second), neutral())
	if dec := as2.Observe("imc", epoch.Add(2*time.Second), hot()); dec.Changed {
		t.Fatalf("neutral interval did not reset the hot streak: %+v", dec)
	}
}

// TestScaleUpCooldownAndMax: consecutive scale-ups are spaced by
// UpCooldown and stop at Max.
func TestScaleUpCooldownAndMax(t *testing.T) {
	as := testScaler()
	now := epoch
	count := 1
	for i := 0; i < 40; i++ {
		dec := as.Observe("imc", now, hot())
		if dec.Changed {
			if delta := dec.Count - count; delta != 1 {
				t.Fatalf("jumped %d replicas at once", delta)
			}
			count = dec.Count
		}
		now = now.Add(500 * time.Millisecond)
	}
	if count != 4 {
		t.Fatalf("count = %d after sustained overload, want Max=4", count)
	}
	// 40 intervals × 500ms = 20s; with a 2s up-cooldown and UpAfter=2 the
	// fastest legal climb reaches Max well inside that, but never faster
	// than one step per cooldown: verify spacing by replay.
	as2 := testScaler()
	var ups []time.Time
	now = epoch
	for i := 0; i < 40; i++ {
		if dec := as2.Observe("imc", now, hot()); dec.Changed {
			ups = append(ups, now)
		}
		now = now.Add(500 * time.Millisecond)
	}
	for i := 1; i < len(ups); i++ {
		if ups[i].Sub(ups[i-1]) < 2*time.Second {
			t.Fatalf("scale-ups %v apart, want ≥ UpCooldown", ups[i].Sub(ups[i-1]))
		}
	}
}

// TestScaleDownHysteresis: shrinking needs a long cold streak AND
// distance from the last scale-up, and steps down one replica per
// DownCooldown.
func TestScaleDownHysteresis(t *testing.T) {
	as := testScaler()
	now := epoch
	// Drive up to 3 replicas.
	for as.Count("imc") < 3 {
		as.Observe("imc", now, hot())
		now = now.Add(2 * time.Second)
	}
	upAt := now

	// Cold immediately after the scale-up: DownAfter is reached but the
	// down-cooldown (measured from the scale-up) blocks the shrink.
	for i := 0; i < 6; i++ {
		now = now.Add(time.Second)
		if dec := as.Observe("imc", now, cold()); dec.Changed {
			t.Fatalf("scaled down %v after a scale-up (cooldown 10s)", now.Sub(upAt))
		}
	}

	// Past the cooldown the sustained cold stream shrinks one step…
	now = upAt.Add(11 * time.Second)
	var downs int
	for i := 0; i < 3; i++ {
		if dec := as.Observe("imc", now, cold()); dec.Changed {
			downs++
			if dec.Count != 2 {
				t.Fatalf("first shrink to %d, want 2", dec.Count)
			}
		}
		now = now.Add(time.Second)
	}
	if downs != 1 {
		t.Fatalf("%d scale-downs in one cold streak, want exactly 1", downs)
	}

	// …and the next step waits a full DownCooldown again (6 one-second
	// intervals: well inside the 10s cooldown from the first shrink).
	for i := 0; i < 6; i++ {
		if dec := as.Observe("imc", now, cold()); dec.Changed {
			t.Fatal("second shrink inside DownCooldown")
		}
		now = now.Add(time.Second)
	}
	now = now.Add(10 * time.Second)
	for i := 0; i < 3; i++ {
		as.Observe("imc", now, cold())
		now = now.Add(time.Second)
	}
	if got := as.Count("imc"); got != 1 {
		t.Fatalf("count = %d after second cold epoch, want Min=1", got)
	}
	// At Min it stays put forever.
	for i := 0; i < 10; i++ {
		if dec := as.Observe("imc", now, cold()); dec.Changed {
			t.Fatal("scaled below Min")
		}
		now = now.Add(time.Second)
	}
}

// TestNoFlappingUnderOscillatingLoad: alternating hot and cold
// intervals keep resetting each other's streaks — the count must hold
// still through the whole oscillation.
func TestNoFlappingUnderOscillatingLoad(t *testing.T) {
	as := testScaler()
	as.SetCount("imc", 2)
	now := epoch
	for i := 0; i < 100; i++ {
		obs := hot()
		if i%2 == 1 {
			obs = cold()
		}
		if dec := as.Observe("imc", now, obs); dec.Changed {
			t.Fatalf("interval %d: count changed to %d under oscillating load", i, dec.Count)
		}
		now = now.Add(time.Second)
	}
	if got := as.Count("imc"); got != 2 {
		t.Fatalf("count drifted to %d", got)
	}
}

// TestP99Signal: the latency signal scales up without any sheds, and
// sheds block scale-down even when p99 looks comfortable.
func TestP99Signal(t *testing.T) {
	as := testScaler()
	now := epoch
	slow := Observation{ShedRate: 0, P99: 48 * time.Millisecond, SLO: 50 * time.Millisecond}
	as.Observe("imc", now, slow)
	dec := as.Observe("imc", now.Add(time.Second), slow)
	if !dec.Changed || dec.Count != 2 {
		t.Fatalf("p99 at 96%% of SLO did not scale up: %+v", dec)
	}

	as2 := testScaler()
	as2.SetCount("asr", 2)
	now = epoch
	shedding := Observation{ShedRate: 0.005, P99: 5 * time.Millisecond, SLO: 50 * time.Millisecond}
	for i := 0; i < 20; i++ {
		if dec := as2.Observe("asr", now, shedding); dec.Changed {
			t.Fatalf("scaled with sheds still occurring: %+v", dec)
		}
		now = now.Add(time.Second)
	}
}

// TestSetCountClampsAndResets: operator pins are clamped to
// [Min, Max].
func TestSetCountClampsAndResets(t *testing.T) {
	as := testScaler()
	if got := as.SetCount("imc", 99); got != 4 {
		t.Fatalf("SetCount(99) = %d, want clamp to Max", got)
	}
	if got := as.SetCount("imc", 0); got != 1 {
		t.Fatalf("SetCount(0) = %d, want clamp to Min", got)
	}
}
