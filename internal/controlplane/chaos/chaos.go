// Package chaos is the control plane's proof layer: a deterministic
// fault-injection harness that drives an in-process DjiNN fleet
// through scripted replica kills, slowdowns, and partitions while a
// query stream runs, and accounts for every single issued query. The
// invariant under test is the serving tier's core promise — a query is
// answered, shed, or expired, never silently lost — and it must hold
// while the control plane is actively moving applications between
// replicas.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"djinn/internal/controlplane"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
)

// EventKind is one fault class.
type EventKind int

const (
	// Kill makes every query to the replica fail like a dead process
	// (transport error) until the fault heals.
	Kill EventKind = iota
	// Slow delays every answer from the replica by Event.Delay.
	Slow
	// Partition behaves like Kill — the replica is unreachable — but
	// the replica's server keeps running; on heal it needs no revive
	// warm-up.
	Partition
)

func (k EventKind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Slow:
		return "slow"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scripted fault: at At after the run starts, Target
// misbehaves per Kind for For, then heals (and is revived in the
// control plane).
type Event struct {
	At     time.Duration
	Kind   EventKind
	Target string
	For    time.Duration
	Delay  time.Duration // Slow only: added latency per query
}

// AppSpec declares one application served by the fleet.
type AppSpec struct {
	Name  string
	Count int           // replicas (default 2)
	SLO   time.Duration // enables the scheduler (default 40ms)
}

// Options configures a harness run.
type Options struct {
	Replicas int       // fleet size (default 3)
	Apps     []AppSpec // default one app "tiny"
	Schedule []Event

	Clients  int           // closed-loop query workers (default 4)
	Duration time.Duration // load duration (default 500ms)
	Deadline time.Duration // per-query deadline (default 100ms)

	Tick       time.Duration // control loop period (default 10ms)
	Autoscale  bool          // enable the autoscaler (Min 2)
	DrainDelay time.Duration // default Deadline + 20ms

	Logf func(format string, args ...any) // default: discard
}

// Result is a run's full accounting. Lost is the balance check:
// Issued − (OK + Shed + Expired + Errors); the zero-lost invariant is
// Lost == 0 AND Errors == 0.
type Result struct {
	Issued, OK, Shed, Expired, Errors int64
	Lost                              int64

	Moves         int64         // app placements changed across the run
	Rebalances    int64         // reconcile passes
	LastRebalance time.Duration // duration of the last moving reconcile
	Timeline      []string      // human-readable fault/rebalance log
}

func (r Result) String() string {
	return fmt.Sprintf("issued=%d ok=%d shed=%d expired=%d errors=%d lost=%d moves=%d",
		r.Issued, r.OK, r.Shed, r.Expired, r.Errors, r.Lost, r.Moves)
}

// faultBackend wraps a replica's server with an injectable fault mode.
type faultBackend struct {
	srv  *service.Server
	down atomic.Bool  // Kill or Partition active
	slow atomic.Int64 // Slow active: delay in nanoseconds
}

func (f *faultBackend) Infer(app string, in []float32) ([]float32, error) {
	return f.InferCtx(context.Background(), app, in)
}

func (f *faultBackend) InferCtx(ctx context.Context, app string, in []float32) ([]float32, error) {
	if f.down.Load() {
		return nil, fmt.Errorf("%w: replica unreachable (injected)", service.ErrTransport)
	}
	if d := f.slow.Load(); d > 0 {
		t := time.NewTimer(time.Duration(d))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("%w: %v", service.ErrDeadlineExceeded, ctx.Err())
		case <-t.C:
		}
	}
	return f.srv.InferCtx(ctx, app, in)
}

func tinyNet(name string, seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet(name, nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if len(o.Apps) == 0 {
		o.Apps = []AppSpec{{Name: "tiny"}}
	}
	for i := range o.Apps {
		if o.Apps[i].Count <= 0 {
			o.Apps[i].Count = 2
		}
		if o.Apps[i].SLO <= 0 {
			o.Apps[i].SLO = 40 * time.Millisecond
		}
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Duration <= 0 {
		o.Duration = 500 * time.Millisecond
	}
	if o.Deadline <= 0 {
		o.Deadline = 100 * time.Millisecond
	}
	if o.Tick <= 0 {
		o.Tick = 10 * time.Millisecond
	}
	if o.DrainDelay <= 0 {
		o.DrainDelay = o.Deadline + 20*time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Fleet is the assembled in-process cluster a harness run drives.
type Fleet struct {
	opts    Options
	rt      *router.Router
	ctl     *controlplane.Controller
	servers map[string]*service.Server
	faults  map[string]*faultBackend

	mu       sync.Mutex
	timeline []string
	start    time.Time
}

func (f *Fleet) note(format string, args ...any) {
	f.mu.Lock()
	f.timeline = append(f.timeline, fmt.Sprintf("%6s %s",
		time.Since(f.start).Round(time.Millisecond), fmt.Sprintf(format, args...)))
	f.mu.Unlock()
	f.opts.Logf(format, args...)
}

// NewFleet builds the replicas, router, and controller for opts and
// installs the initial placement. Close the fleet when done.
func NewFleet(opts Options) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{
		opts:    opts,
		servers: map[string]*service.Server{},
		faults:  map[string]*faultBackend{},
		start:   time.Now(),
	}
	f.rt = router.New(router.Config{
		Policy: router.LeastOutstanding,
		Health: router.HealthConfig{
			FailureThreshold: 2,
			ProbeInterval:    20 * time.Millisecond,
			MaxProbeInterval: 100 * time.Millisecond,
		},
	})

	apps := make([]string, len(opts.Apps))
	nets := map[string]*nn.Net{}
	counts := map[string]int{}
	var slo time.Duration
	for i, spec := range opts.Apps {
		apps[i] = spec.Name
		nets[spec.Name] = tinyNet(spec.Name, uint64(i)+1)
		counts[spec.Name] = spec.Count
		if spec.SLO > slo {
			slo = spec.SLO
		}
	}

	mapper := controlplane.NewMapper(controlplane.MapperConfig{
		Policy:       controlplane.LeastLoaded{},
		DefaultCount: 2,
		CanaryWeight: 50,
	})
	for app, n := range counts {
		mapper.SetCount(app, n)
	}
	var as *controlplane.Autoscaler
	if opts.Autoscale {
		as = controlplane.NewAutoscaler(controlplane.AutoscaleConfig{
			Min: 2, Max: opts.Replicas,
			UpAfter: 2, DownAfter: 8,
			UpCooldown:   4 * opts.Tick,
			DownCooldown: 20 * opts.Tick,
		})
		for app, n := range counts {
			as.SetCount(app, n)
		}
	}
	f.ctl = controlplane.NewController(controlplane.Config{
		Router:     f.rt,
		Mapper:     mapper,
		Autoscaler: as,
		Apps:       apps,
		DeadAfter:  2,
		DrainDelay: opts.DrainDelay,
		Logf: func(format string, args ...any) {
			f.note(format, args...)
		},
	})

	for i := 0; i < opts.Replicas; i++ {
		id := fmt.Sprintf("r%d", i)
		srv := service.NewServer()
		srv.SetLogger(func(string, ...any) {})
		fb := &faultBackend{srv: srv}
		f.servers[id] = srv
		f.faults[id] = fb
		if err := f.rt.AddBackend(id, fb); err != nil {
			panic(err) // duplicate IDs cannot happen: generated above
		}
		cfg := service.AppConfig{
			BatchInstances: 8, BatchWindow: 2 * time.Millisecond,
			Workers: 2, MaxPending: 256, SLO: slo,
		}
		f.ctl.Join(controlplane.NewServerMember(id, srv, nets, cfg))
	}
	f.ctl.Reconcile()
	return f
}

// Router exposes the data path (the experiment drives extra load
// through it).
func (f *Fleet) Router() *router.Router { return f.rt }

// Controller exposes the control plane.
func (f *Fleet) Controller() *controlplane.Controller { return f.ctl }

// Close tears the fleet down: controller loop, drains, router pools,
// replica servers.
func (f *Fleet) Close() {
	f.ctl.Stop()
	f.rt.Close()
	for _, srv := range f.servers {
		srv.Close()
	}
}

// apply turns a fault on, returning the heal function.
func (f *Fleet) apply(ev Event) func() {
	fb, ok := f.faults[ev.Target]
	if !ok {
		f.note("chaos: event targets unknown replica %s", ev.Target)
		return func() {}
	}
	switch ev.Kind {
	case Kill, Partition:
		fb.down.Store(true)
	case Slow:
		d := ev.Delay
		if d <= 0 {
			d = f.opts.Deadline
		}
		fb.slow.Store(int64(d))
	}
	f.note("chaos: %s %s for %v", ev.Kind, ev.Target, ev.For)
	return func() {
		fb.down.Store(false)
		fb.slow.Store(0)
		f.ctl.Revive(ev.Target)
		f.note("chaos: %s healed", ev.Target)
	}
}

// Run executes the scripted schedule against a fresh fleet while
// Clients closed-loop workers issue queries, and returns the full
// accounting. The schedule clock starts when the load starts.
func Run(opts Options) Result {
	opts = opts.withDefaults()
	f := NewFleet(opts)
	defer f.Close()
	f.ctl.Run(opts.Tick)

	var issued, ok, shed, expired, errs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Fault executor: events fire in At order; each heals after For.
	schedule := append([]Event(nil), opts.Schedule...)
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].At < schedule[j].At })
	var heals sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		for _, ev := range schedule {
			wait := ev.At - time.Since(start)
			if wait > 0 {
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
			}
			heal := f.apply(ev)
			heals.Add(1)
			dur := ev.For
			go func() {
				defer heals.Done()
				time.Sleep(dur)
				heal()
			}()
		}
	}()

	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			in := make([]float32, 8)
			for i := range in {
				in[i] = float32(worker + i)
			}
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				app := opts.Apps[(worker+n)%len(opts.Apps)].Name
				n++
				issued.Add(1)
				ctx, cancel := context.WithTimeout(context.Background(), opts.Deadline)
				_, err := f.rt.InferCtx(ctx, app, in)
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, service.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, service.ErrDeadlineExceeded),
					errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				default:
					errs.Add(1)
					f.note("chaos: unaccounted error for %s: %v", app, err)
				}
			}
		}(c)
	}

	time.Sleep(opts.Duration)
	close(stop)
	wg.Wait()
	heals.Wait()
	f.ctl.Stop()

	snap := f.ctl.Snapshot()
	res := Result{
		Issued: issued.Load(), OK: ok.Load(), Shed: shed.Load(),
		Expired: expired.Load(), Errors: errs.Load(),
		Moves: snap.Moves, Rebalances: snap.Rebalances,
		LastRebalance: snap.LastRebalance,
	}
	res.Lost = res.Issued - (res.OK + res.Shed + res.Expired + res.Errors)
	f.mu.Lock()
	res.Timeline = append([]string(nil), f.timeline...)
	f.mu.Unlock()
	return res
}
