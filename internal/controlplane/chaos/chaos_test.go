package chaos

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"djinn/internal/testutil"
)

var chaosSeed = flag.Int64("chaos.seed", 1, "base seed for the randomized chaos schedules")

func assertAccounted(t *testing.T, res Result, label string) {
	t.Helper()
	if res.Issued == 0 {
		t.Fatalf("%s: no queries issued", label)
	}
	if res.Errors != 0 || res.Lost != 0 {
		for _, line := range res.Timeline {
			t.Log(line)
		}
		t.Fatalf("%s: invariant broken: %s", label, res)
	}
	if res.OK == 0 {
		t.Fatalf("%s: nothing succeeded: %s", label, res)
	}
}

// TestScriptedFaults drives the canonical schedule — a kill, a slow
// replica, and a partition, one at a time against a 3-replica fleet
// serving two apps — and asserts the zero-lost invariant: every issued
// query is answered, shed, or expired; none error out, none vanish.
func TestScriptedFaults(t *testing.T) {
	testutil.NoLeaks(t)
	res := Run(Options{
		Replicas: 3,
		Apps: []AppSpec{
			{Name: "imc", Count: 2},
			{Name: "asr", Count: 2},
		},
		Clients:  4,
		Duration: 900 * time.Millisecond,
		Deadline: 100 * time.Millisecond,
		Schedule: []Event{
			{At: 100 * time.Millisecond, Kind: Kill, Target: "r0", For: 150 * time.Millisecond},
			{At: 400 * time.Millisecond, Kind: Slow, Target: "r1", For: 120 * time.Millisecond, Delay: 120 * time.Millisecond},
			{At: 650 * time.Millisecond, Kind: Partition, Target: "r2", For: 120 * time.Millisecond},
		},
	})
	assertAccounted(t, res, "scripted")
	if res.Moves == 0 {
		t.Fatalf("control plane never rebalanced through the faults: %s", res)
	}
}

// TestKilledReplicaFailover: a kill on a placed replica must be
// detected and routed around — attainment of the stream continues and
// the dead replica is removed from every placement until it heals.
func TestKilledReplicaFailover(t *testing.T) {
	testutil.NoLeaks(t)
	res := Run(Options{
		Replicas: 3,
		Apps:     []AppSpec{{Name: "imc", Count: 2}},
		Clients:  3,
		Duration: 600 * time.Millisecond,
		Schedule: []Event{
			{At: 80 * time.Millisecond, Kind: Kill, Target: "r0", For: 300 * time.Millisecond},
		},
	})
	assertAccounted(t, res, "failover")
}

// randomSchedule generates a serialized fault schedule: one fault at a
// time (the fleet keeps every app on ≥2 replicas, so a single
// concurrent fault never removes an app's last copy), random kinds,
// targets, offsets, and durations.
func randomSchedule(rng *rand.Rand, replicas int, span time.Duration) []Event {
	var events []Event
	at := time.Duration(20+rng.Intn(60)) * time.Millisecond
	for at < span {
		dur := time.Duration(30+rng.Intn(60)) * time.Millisecond
		ev := Event{
			At:     at,
			Kind:   EventKind(rng.Intn(3)),
			Target: fmt.Sprintf("r%d", rng.Intn(replicas)),
			For:    dur,
		}
		if ev.Kind == Slow {
			ev.Delay = time.Duration(40+rng.Intn(80)) * time.Millisecond
		}
		events = append(events, ev)
		// Strictly serialized: the next fault starts after this one
		// heals, plus slack for the control plane to re-place.
		at = ev.At + dur + time.Duration(30+rng.Intn(50))*time.Millisecond
	}
	return events
}

// TestChaosPropertyZeroLost is the seeded-random property test: 50+
// generated kill/slow/partition schedules, each against a fresh fleet
// with the autoscaler enabled, all holding the zero-lost invariant.
// The failing seed is logged so any run can be replayed exactly with
// -chaos.seed.
func TestChaosPropertyZeroLost(t *testing.T) {
	const schedules = 52
	for i := 0; i < schedules; i++ {
		seed := *chaosSeed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		span := 300 * time.Millisecond
		opts := Options{
			Replicas: 3 + rng.Intn(2),
			Apps: []AppSpec{
				{Name: "imc", Count: 2},
				{Name: "asr", Count: 2},
			},
			Clients:   2 + rng.Intn(3),
			Duration:  span,
			Deadline:  80 * time.Millisecond,
			Tick:      5 * time.Millisecond,
			Autoscale: rng.Intn(2) == 0,
		}
		opts.Schedule = randomSchedule(rng, opts.Replicas, span)
		res := Run(opts)
		if res.Issued == 0 || res.Errors != 0 || res.Lost != 0 || res.OK == 0 {
			for _, line := range res.Timeline {
				t.Log(line)
			}
			t.Fatalf("seed %d (schedule %d/%d, %d events): invariant broken: %s\nreplay with: go test ./internal/controlplane/chaos -run TestChaosPropertyZeroLost -chaos.seed %d",
				seed, i+1, schedules, len(opts.Schedule), res, *chaosSeed+int64(i))
		}
	}
}
