package controlplane

import (
	"strings"
	"testing"
	"time"

	"djinn/internal/events"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

func silence(string, ...any) {}

func tinyNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("tiny", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

func testAppCfg() service.AppConfig {
	return service.AppConfig{BatchInstances: 4, BatchWindow: time.Millisecond, Workers: 1, MaxPending: 64}
}

// testFleet builds n in-process replicas registered with both the
// router (data path) and the controller (control path). No app is
// registered up front: activation is the controller's job.
func testFleet(t *testing.T, c *Controller, rt *router.Router, n int, apps []string) []*ServerMember {
	t.Helper()
	members := make([]*ServerMember, n)
	for i := 0; i < n; i++ {
		srv := service.NewServer()
		srv.SetLogger(silence)
		t.Cleanup(srv.Close)
		nets := map[string]*nn.Net{}
		for _, app := range apps {
			nets[app] = tinyNet(1)
		}
		id := string(rune('a' + i))
		if err := rt.AddBackend(id, srv); err != nil {
			t.Fatal(err)
		}
		m := NewServerMember(id, srv, nets, testAppCfg())
		members[i] = m
		c.Join(m)
	}
	return members
}

// TestReconcileActivatesAndDrains: the reconciler activates an app on
// exactly its placed replicas, queries flow, and shrinking the
// membership moves the assignment and drains the old replica.
func TestReconcileActivatesAndDrains(t *testing.T) {
	testutil.NoLeaks(t)
	rt := router.New(router.Config{})
	defer rt.Close()
	c := NewController(Config{
		Router: rt,
		Mapper: NewMapper(MapperConfig{Policy: LeastLoaded{}, DefaultCount: 2}),
		Apps:   []string{"tiny"},
	})
	members := testFleet(t, c, rt, 3, []string{"tiny"})

	res := c.Reconcile()
	if res.Moves != 1 {
		t.Fatalf("first reconcile: %d moves, want 1", res.Moves)
	}
	pls := rt.Placements()["tiny"]
	if len(pls) != 2 {
		t.Fatalf("placement %v, want 2 replicas", pls)
	}
	active := 0
	for _, m := range members {
		for _, app := range m.Server().Apps() {
			if app == "tiny" {
				active++
			}
		}
	}
	if active != 2 {
		t.Fatalf("app active on %d replicas, want 2", active)
	}
	if _, err := rt.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}

	// A second reconcile with nothing changed is a no-op.
	if res := c.Reconcile(); res.Moves != 0 {
		t.Fatalf("steady-state reconcile made %d moves", res.Moves)
	}

	// Decommission one of the assignees: the app moves to the spare,
	// and the drained replica ends up without the app.
	victim := pls[0].Replica
	c.Leave(victim)
	if res := c.Reconcile(); res.Moves != 1 {
		t.Fatalf("post-leave reconcile: %d moves, want 1", res.Moves)
	}
	c.WaitDrains()
	for _, m := range members {
		has := false
		for _, app := range m.Server().Apps() {
			if app == "tiny" {
				has = true
			}
		}
		if m.ID() == victim && has {
			t.Fatalf("drained replica %s still serves the app", victim)
		}
	}
	for _, p := range rt.Placements()["tiny"] {
		if p.Replica == victim {
			t.Fatalf("placement still names departed replica: %v", rt.Placements()["tiny"])
		}
	}
	if _, err := rt.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatalf("query after rebalance: %v", err)
	}
}

// TestControlVerbs: the verb family the front-end proxy exposes.
func TestControlVerbs(t *testing.T) {
	testutil.NoLeaks(t)
	rt := router.New(router.Config{})
	defer rt.Close()
	c := NewController(Config{
		Router:     rt,
		Mapper:     NewMapper(MapperConfig{Policy: ConsistentHash{}}),
		Autoscaler: NewAutoscaler(AutoscaleConfig{Min: 1, Max: 3}),
		Apps:       []string{"tiny"},
	})
	testFleet(t, c, rt, 3, []string{"tiny"})
	c.Reconcile()

	out, err := c.Control("placement")
	if err != nil || !strings.HasPrefix(out, "tiny ") {
		t.Fatalf("placement: %q, %v", out, err)
	}
	out, err = c.Control("members")
	if err != nil || !strings.Contains(out, "a live") {
		t.Fatalf("members: %q, %v", out, err)
	}
	out, err = c.Control("scale tiny 2")
	if err != nil || !strings.Contains(out, "scaled tiny to 2") {
		t.Fatalf("scale: %q, %v", out, err)
	}
	c.WaitDrains()
	if got := len(rt.Placements()["tiny"]); got != 2 {
		t.Fatalf("placement has %d replicas after scale verb, want 2", got)
	}
	out, err = c.Control("autoscale tiny")
	if err != nil || !strings.Contains(out, "count=2") {
		t.Fatalf("autoscale: %q, %v", out, err)
	}
	if _, err := c.Control("scale ghost 2"); err == nil {
		t.Fatal("scale accepted an unmanaged app")
	}
	if _, err := c.Control("bogus"); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if _, err := c.Control("rebalance"); err != nil {
		t.Fatal(err)
	}
}

// TestHealthDrivenDeathAndRevive: a replica the router keeps reporting
// unhealthy is declared dead after DeadAfter ticks and its assignments
// move; Revive folds it back in on the next reconcile.
func TestHealthDrivenDeathAndRevive(t *testing.T) {
	testutil.NoLeaks(t)
	rt := router.New(router.Config{Health: router.HealthConfig{
		FailureThreshold: 1,
		ProbeInterval:    time.Hour, // stay down for the whole test
		MaxProbeInterval: time.Hour,
	}})
	defer rt.Close()
	c := NewController(Config{
		Router:    rt,
		Mapper:    NewMapper(MapperConfig{Policy: LeastLoaded{}, DefaultCount: 2}),
		Apps:      []string{"tiny"},
		DeadAfter: 2,
		Logf:      silence,
	})
	members := testFleet(t, c, rt, 3, []string{"tiny"})
	c.Reconcile()
	victim := rt.Placements()["tiny"][0].Replica

	// Kill the victim's server: its in-flight handling fails with a
	// retryable shutdown error, the router marks it down, and the
	// controller's health scan declares it dead two ticks later.
	for _, m := range members {
		if m.ID() == victim {
			m.Server().Close()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rt.Infer("tiny", make([]float32, 8)) // drive traffic so health updates
		res := c.Tick(time.Now())
		if res.Moves > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never declared the dead replica")
		}
	}
	for _, p := range rt.Placements()["tiny"] {
		if p.Replica == victim {
			t.Fatalf("dead replica still placed: %v", rt.Placements()["tiny"])
		}
	}
	if live := c.MemberIDs()[victim]; live {
		t.Fatal("victim still marked live")
	}
	if _, err := rt.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatalf("query after failover: %v", err)
	}

	// The operator can't revive what never rejoined the data path, but
	// Revive flips the control-plane state and the next reconcile may
	// place apps there again.
	if !c.Revive(victim) {
		t.Fatal("Revive failed")
	}
	if live := c.MemberIDs()[victim]; !live {
		t.Fatal("victim still dead after Revive")
	}
	c.WaitDrains()
}

// TestControllerJournalsFleetEvents: membership, placement (with its
// reconcile generation), and death transitions all land in the journal.
func TestControllerJournalsFleetEvents(t *testing.T) {
	testutil.NoLeaks(t)
	rt := router.New(router.Config{Health: router.HealthConfig{
		FailureThreshold: 1,
		ProbeInterval:    time.Hour,
		MaxProbeInterval: time.Hour,
	}})
	defer rt.Close()
	j := events.New(128)
	c := NewController(Config{
		Router:    rt,
		Mapper:    NewMapper(MapperConfig{Policy: LeastLoaded{}, DefaultCount: 1}),
		Apps:      []string{"tiny"},
		DeadAfter: 1,
		Logf:      silence,
		Journal:   j,
	})
	members := testFleet(t, c, rt, 2, []string{"tiny"})
	if got := len(j.Filter(events.KindMember, 0)); got != 2 {
		t.Fatalf("join events = %d, want 2", got)
	}
	c.Reconcile()
	pls := j.Filter(events.KindPlacement, 0)
	if len(pls) != 1 || !strings.Contains(pls[0].Msg, "gen 1: tiny →") {
		t.Fatalf("placement events = %+v, want one gen-1 flip", pls)
	}

	// Kill the placed replica; the death and re-placement both journal.
	victim := rt.Placements()["tiny"][0].Replica
	for _, m := range members {
		if m.ID() == victim {
			m.Server().Close()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Tick(time.Now()).Moves == 0 {
		rt.Infer("tiny", make([]float32, 8))
		if time.Now().After(deadline) {
			t.Fatal("failover never happened")
		}
	}
	found := false
	for _, ev := range j.Filter(events.KindMember, 0) {
		if strings.Contains(ev.Msg, victim+" declared dead") {
			found = true
		}
	}
	if !found {
		t.Errorf("no death event for %s in journal", victim)
	}
	pls = j.Filter(events.KindPlacement, 0)
	last := pls[len(pls)-1].Msg
	if len(pls) < 2 || strings.Contains(last, "gen 1:") || strings.Contains(last, victim) {
		t.Errorf("re-placement not journaled at a later generation off %s: %+v", victim, pls)
	}
	c.WaitDrains()
}
