package controlplane

import (
	"sort"
	"sync"

	"djinn/internal/router"
)

// ShardMap is one full placement: app → weighted replica set, the unit
// the reconciler diffs and installs into the router.
type ShardMap map[string][]router.Placement

// MapperConfig parameterizes shard-map construction.
type MapperConfig struct {
	Policy Policy // nil = ConsistentHash{}
	// DefaultCount is the replica count for apps without an explicit
	// SetCount (default 1).
	DefaultCount int
	// FullWeight is an established assignee's traffic weight
	// (default 100); CanaryWeight is a newly placed assignee's weight
	// until the next Rebuild promotes it (default = FullWeight, i.e.
	// no canary ramp). A canary share warms a fresh replica's batches
	// before it takes a full cut of the traffic.
	FullWeight   uint32
	CanaryWeight uint32
}

// Mapper turns (apps, live members, per-app counts) into a ShardMap.
// It remembers each app's previous assignment so policies can minimize
// movement and so new assignees can be told apart from established
// ones (canary weighting).
type Mapper struct {
	cfg MapperConfig

	mu     sync.Mutex
	counts map[string]int
	prev   map[string][]string
}

// NewMapper creates a Mapper; zero-value config fields take defaults.
func NewMapper(cfg MapperConfig) *Mapper {
	if cfg.Policy == nil {
		cfg.Policy = ConsistentHash{}
	}
	if cfg.DefaultCount < 1 {
		cfg.DefaultCount = 1
	}
	if cfg.FullWeight == 0 {
		cfg.FullWeight = 100
	}
	if cfg.CanaryWeight == 0 || cfg.CanaryWeight > cfg.FullWeight {
		cfg.CanaryWeight = cfg.FullWeight
	}
	return &Mapper{
		cfg:    cfg,
		counts: map[string]int{},
		prev:   map[string][]string{},
	}
}

// Policy returns the mapper's placement policy.
func (m *Mapper) Policy() Policy { return m.cfg.Policy }

// SetCount sets app's desired replica count (clamped to ≥1).
func (m *Mapper) SetCount(app string, n int) {
	if n < 1 {
		n = 1
	}
	m.mu.Lock()
	m.counts[app] = n
	m.mu.Unlock()
}

// Count returns app's desired replica count.
func (m *Mapper) Count(app string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.counts[app]; ok {
		return n
	}
	return m.cfg.DefaultCount
}

// Counts snapshots every explicit per-app count.
func (m *Mapper) Counts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.counts))
	for app, n := range m.counts {
		out[app] = n
	}
	return out
}

// Rebuild computes the shard map for apps over the live members. Apps
// are placed in sorted order so the per-round load signal (apps
// assigned so far) is deterministic. Members that carried an app in
// the previous round keep FullWeight; fresh assignees start at
// CanaryWeight and are promoted on the next Rebuild that keeps them.
func (m *Mapper) Rebuild(apps, members []string) ShardMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	sortedApps := dedupSorted(apps)
	load := make(map[string]float64, len(members))
	out := make(ShardMap, len(sortedApps))
	for _, app := range sortedApps {
		want := m.cfg.DefaultCount
		if n, ok := m.counts[app]; ok {
			want = n
		}
		assigned := m.cfg.Policy.Place(PlaceInput{
			App:     app,
			Want:    want,
			Members: members,
			Prev:    m.prev[app],
			Load:    load,
		})
		if len(assigned) == 0 {
			continue
		}
		established := make(map[string]bool, len(m.prev[app]))
		for _, id := range m.prev[app] {
			established[id] = true
		}
		pl := make([]router.Placement, len(assigned))
		hasEstablished := false
		for _, id := range assigned {
			hasEstablished = hasEstablished || established[id]
		}
		for i, id := range assigned {
			w := m.cfg.FullWeight
			// A canary share only makes sense while established
			// assignees carry the rest of the traffic; a fully fresh
			// assignment (first placement, or every prior member gone)
			// starts everyone at full weight.
			if hasEstablished && !established[id] {
				w = m.cfg.CanaryWeight
			}
			pl[i] = router.Placement{Replica: id, Weight: w}
			load[id]++
		}
		sort.Slice(pl, func(i, j int) bool { return pl[i].Replica < pl[j].Replica })
		out[app] = pl
		m.prev[app] = assigned
	}
	// Forget apps that are no longer placed at all.
	for app := range m.prev {
		if _, ok := out[app]; !ok {
			found := false
			for _, a := range sortedApps {
				if a == app {
					found = true
					break
				}
			}
			if !found {
				delete(m.prev, app)
			}
		}
	}
	return out
}
