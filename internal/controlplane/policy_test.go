package controlplane

import (
	"fmt"
	"reflect"
	"testing"

	"djinn/internal/router"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("r%02d", i)
	}
	return out
}

func apps(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("app%03d", i)
	}
	return out
}

// TestPoliciesDeterministic: both policies are pure functions of their
// input — the table covers varying want, membership, and prev sets.
func TestPoliciesDeterministic(t *testing.T) {
	policies := []Policy{ConsistentHash{}, LeastLoaded{}}
	cases := []PlaceInput{
		{App: "imc", Want: 1, Members: members(4)},
		{App: "imc", Want: 3, Members: members(4)},
		{App: "asr", Want: 2, Members: members(8), Prev: []string{"r03"}},
		{App: "face", Want: 2, Members: members(8), Load: map[string]float64{"r00": 5, "r01": 1}},
		{App: "pos", Want: 10, Members: members(3)}, // want clamped to fleet
		{App: "chk", Want: 0, Members: members(3)},  // want clamped to 1
	}
	for _, p := range policies {
		for _, in := range cases {
			t.Run(fmt.Sprintf("%s/%s/want%d", p.Name(), in.App, in.Want), func(t *testing.T) {
				a := p.Place(in)
				b := p.Place(in)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("non-deterministic: %v then %v", a, b)
				}
				want := in.Want
				if want < 1 {
					want = 1
				}
				if want > len(in.Members) {
					want = len(in.Members)
				}
				if len(a) != want {
					t.Fatalf("placed %d replicas, want %d: %v", len(a), want, a)
				}
				seen := map[string]bool{}
				valid := map[string]bool{}
				for _, m := range in.Members {
					valid[m] = true
				}
				for _, id := range a {
					if seen[id] {
						t.Fatalf("duplicate assignee %s in %v", id, a)
					}
					if !valid[id] {
						t.Fatalf("assignee %s not a member", id)
					}
					seen[id] = true
				}
			})
		}
	}
}

// TestConsistentHashChurnBound: removing one member moves only the
// apps that member carried — every app whose assignment did not
// include the removed member keeps its exact replica set.
func TestConsistentHashChurnBound(t *testing.T) {
	ch := ConsistentHash{}
	fleet := members(8)
	all := apps(60)
	for _, want := range []int{1, 2} {
		before := map[string][]string{}
		for _, app := range all {
			before[app] = ch.Place(PlaceInput{App: app, Want: want, Members: fleet})
		}
		removed := "r03"
		var survivors []string
		for _, m := range fleet {
			if m != removed {
				survivors = append(survivors, m)
			}
		}
		moved := 0
		for _, app := range all {
			after := ch.Place(PlaceInput{App: app, Want: want, Members: survivors})
			had := false
			for _, id := range before[app] {
				if id == removed {
					had = true
				}
			}
			if !had {
				if !reflect.DeepEqual(after, before[app]) {
					t.Fatalf("want=%d: %s moved from %v to %v though %s was not an assignee",
						want, app, before[app], after, removed)
				}
			} else {
				moved++
			}
		}
		if moved == 0 {
			t.Fatalf("want=%d: no app was placed on %s — churn bound untested", want, removed)
		}
	}
}

// TestConsistentHashSpread: virtual nodes keep the ring roughly
// balanced — deterministic, so the bound is checked once and holds
// forever.
func TestConsistentHashSpread(t *testing.T) {
	ch := ConsistentHash{}
	fleet := members(8)
	counts := map[string]int{}
	for _, app := range apps(200) {
		for _, id := range ch.Place(PlaceInput{App: app, Want: 1, Members: fleet}) {
			counts[id]++
		}
	}
	avg := 200.0 / 8.0
	for _, id := range fleet {
		if counts[id] == 0 {
			t.Fatalf("member %s received no apps: %v", id, counts)
		}
		if float64(counts[id]) > 3*avg {
			t.Fatalf("member %s has %d of 200 apps (avg %.0f): ring badly skewed", id, counts[id], avg)
		}
	}
}

// TestLeastLoadedPicksColdMembers: without history the policy fills
// from the lowest load signal, ties broken by ID.
func TestLeastLoadedPicksColdMembers(t *testing.T) {
	ll := LeastLoaded{}
	got := ll.Place(PlaceInput{
		App: "imc", Want: 2, Members: []string{"r2", "r0", "r1", "r3"},
		Load: map[string]float64{"r0": 3, "r1": 0, "r2": 1, "r3": 0},
	})
	if !reflect.DeepEqual(got, []string{"r1", "r3"}) {
		t.Fatalf("Place = %v, want [r1 r3] (lowest load, ties by id)", got)
	}
}

// TestLeastLoadedMinimalMovement: surviving previous assignees are
// kept even when colder members exist — a load wobble must not churn
// the map — and only dead assignees are replaced.
func TestLeastLoadedMinimalMovement(t *testing.T) {
	ll := LeastLoaded{}
	got := ll.Place(PlaceInput{
		App: "imc", Want: 2, Members: members(4), Prev: []string{"r01", "r02"},
		Load: map[string]float64{"r01": 9, "r02": 9, "r00": 0, "r03": 0},
	})
	if !reflect.DeepEqual(got, []string{"r01", "r02"}) {
		t.Fatalf("Place = %v, want previous assignees kept despite load", got)
	}
	// One assignee dies: it is replaced, the survivor stays.
	got = ll.Place(PlaceInput{
		App: "imc", Want: 2, Members: []string{"r00", "r01", "r03"}, Prev: []string{"r01", "r02"},
		Load: map[string]float64{"r00": 1, "r03": 0},
	})
	if !reflect.DeepEqual(got, []string{"r01", "r03"}) {
		t.Fatalf("Place = %v, want [r01 r03] (survivor kept, coldest fill-in)", got)
	}
}

// TestMapperCanaryWeights: a replica newly added to an app's set
// starts at CanaryWeight next to established full-weight assignees and
// is promoted on the following rebuild; a from-scratch placement
// starts everyone at full weight.
func TestMapperCanaryWeights(t *testing.T) {
	m := NewMapper(MapperConfig{Policy: LeastLoaded{}, FullWeight: 100, CanaryWeight: 25})
	fleet := members(4)

	sm := m.Rebuild([]string{"imc"}, fleet)
	if len(sm["imc"]) != 1 || sm["imc"][0].Weight != 100 {
		t.Fatalf("fresh placement = %v, want one full-weight assignee", sm["imc"])
	}
	first := sm["imc"][0].Replica

	m.SetCount("imc", 2)
	sm = m.Rebuild([]string{"imc"}, fleet)
	if len(sm["imc"]) != 2 {
		t.Fatalf("after SetCount(2): %v", sm["imc"])
	}
	for _, p := range sm["imc"] {
		want := uint32(25)
		if p.Replica == first {
			want = 100
		}
		if p.Weight != want {
			t.Fatalf("placement %v: %s has weight %d, want %d", sm["imc"], p.Replica, p.Weight, want)
		}
	}

	sm = m.Rebuild([]string{"imc"}, fleet)
	for _, p := range sm["imc"] {
		if p.Weight != 100 {
			t.Fatalf("canary not promoted on next rebuild: %v", sm["imc"])
		}
	}
}

// TestMapperPlacementsInstallable: rebuild output is always valid
// router input (non-zero weights, no duplicates).
func TestMapperPlacementsInstallable(t *testing.T) {
	m := NewMapper(MapperConfig{DefaultCount: 2, CanaryWeight: 25})
	rt := router.New(router.Config{})
	defer rt.Close()
	for app, pl := range m.Rebuild(apps(20), members(5)) {
		if err := rt.SetPlacement(app, pl...); err != nil {
			t.Fatalf("SetPlacement(%s, %v): %v", app, pl, err)
		}
	}
}
