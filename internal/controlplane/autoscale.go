package controlplane

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AutoscaleConfig tunes the per-app replica-count controller. The
// autoscaler is a pure state machine over explicit observations and an
// injected clock — the AIMD batch controller's test discipline applied
// at fleet scope — so every decision is replayable in tests without
// sleeping.
type AutoscaleConfig struct {
	Min, Max int // replica-count bounds (defaults 1, 8)

	// ShedHigh: an observation is hot when the interval shed rate
	// (rejected / decisions) exceeds this (default 0.01).
	ShedHigh float64
	// P99HighFrac: an observation is also hot when p99 exceeds this
	// fraction of the SLO (default 0.9). Zero SLO disables the latency
	// signal.
	P99HighFrac float64
	// P99LowFrac: an observation is cold only when sheds are absent
	// AND p99 is below this fraction of the SLO (default 0.5).
	P99LowFrac float64

	// UpAfter consecutive hot observations grow the count by one;
	// DownAfter consecutive cold observations shrink it by one
	// (defaults 2, 6 — scaling down is deliberately much lazier than
	// scaling up).
	UpAfter, DownAfter int

	// UpCooldown / DownCooldown bound how often the count may change
	// in each direction; a scale-down is additionally blocked within
	// DownCooldown of the last scale-up, which is what prevents
	// flapping under oscillating load (defaults 0, 30s).
	UpCooldown, DownCooldown time.Duration
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		if c.Max <= 0 {
			c.Max = 8
		}
		if c.Max < c.Min {
			c.Max = c.Min
		}
	}
	if c.ShedHigh == 0 {
		c.ShedHigh = 0.01
	}
	if c.P99HighFrac == 0 {
		c.P99HighFrac = 0.9
	}
	if c.P99LowFrac == 0 {
		c.P99LowFrac = 0.5
	}
	if c.UpAfter < 1 {
		c.UpAfter = 2
	}
	if c.DownAfter < 1 {
		c.DownAfter = 6
	}
	if c.DownCooldown == 0 {
		c.DownCooldown = 30 * time.Second
	}
	return c
}

// Observation is one evaluation interval's signals for one app,
// aggregated across its replicas from the djinn_sched_* plane.
type Observation struct {
	ShedRate float64       // rejected / (admitted+rejected) this interval
	P99      time.Duration // worst recent p99 across the app's replicas
	SLO      time.Duration // the app's latency objective (0 = none)
}

// Decision reports what one Observe call did.
type Decision struct {
	Count   int  // desired replica count after the observation
	Changed bool // the count moved this call
}

type appScale struct {
	count      int
	hotStreak  int
	coldStreak int
	lastUp     time.Time
	lastDown   time.Time
	scaleUps   int64
	scaleDowns int64
}

// Autoscaler tracks desired replica counts per app.
type Autoscaler struct {
	cfg AutoscaleConfig

	mu   sync.Mutex
	apps map[string]*appScale
}

// NewAutoscaler creates an Autoscaler; zero config fields take
// defaults.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	return &Autoscaler{cfg: cfg.withDefaults(), apps: map[string]*appScale{}}
}

// Config returns the effective (defaulted) configuration.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

func (a *Autoscaler) state(app string) *appScale {
	st, ok := a.apps[app]
	if !ok {
		st = &appScale{count: a.cfg.Min}
		a.apps[app] = st
	}
	return st
}

// SetCount pins an app's current desired count (e.g. from an operator's
// "scale" verb); streaks reset so the next decision starts fresh.
func (a *Autoscaler) SetCount(app string, n int) int {
	if n < a.cfg.Min {
		n = a.cfg.Min
	}
	if n > a.cfg.Max {
		n = a.cfg.Max
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(app)
	st.count = n
	st.hotStreak, st.coldStreak = 0, 0
	return n
}

// Count returns the app's current desired replica count.
func (a *Autoscaler) Count(app string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state(app).count
}

// Observe feeds one interval's signals for app at the given time and
// returns the (possibly unchanged) desired count. Hot and cold streaks
// are mutually resetting: an oscillating workload keeps knocking both
// streaks back to zero and the count holds still.
func (a *Autoscaler) Observe(app string, now time.Time, obs Observation) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(app)

	hot := obs.ShedRate > a.cfg.ShedHigh
	cold := obs.ShedRate == 0
	if obs.SLO > 0 {
		high := time.Duration(float64(obs.SLO) * a.cfg.P99HighFrac)
		low := time.Duration(float64(obs.SLO) * a.cfg.P99LowFrac)
		hot = hot || obs.P99 > high
		cold = cold && obs.P99 < low
	}

	switch {
	case hot:
		st.coldStreak = 0
		st.hotStreak++
		if st.hotStreak >= a.cfg.UpAfter &&
			st.count < a.cfg.Max &&
			(st.lastUp.IsZero() || now.Sub(st.lastUp) >= a.cfg.UpCooldown) {
			st.count++
			st.lastUp = now
			st.hotStreak = 0
			st.scaleUps++
			return Decision{Count: st.count, Changed: true}
		}
	case cold:
		st.hotStreak = 0
		st.coldStreak++
		recentUp := !st.lastUp.IsZero() && now.Sub(st.lastUp) < a.cfg.DownCooldown
		recentDown := !st.lastDown.IsZero() && now.Sub(st.lastDown) < a.cfg.DownCooldown
		if st.coldStreak >= a.cfg.DownAfter &&
			st.count > a.cfg.Min && !recentUp && !recentDown {
			st.count--
			st.lastDown = now
			st.coldStreak = 0
			st.scaleDowns++
			return Decision{Count: st.count, Changed: true}
		}
	default:
		// In the dead band between hot and cold: hold position and
		// make both thresholds start over.
		st.hotStreak, st.coldStreak = 0, 0
	}
	return Decision{Count: st.count}
}

// ScaleStats is one app's autoscaler counters, for the admin plane.
type ScaleStats struct {
	App                  string
	Count                int
	ScaleUps, ScaleDowns int64
}

// Stats snapshots every tracked app's counters, sorted by app name.
func (a *Autoscaler) Stats() []ScaleStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ScaleStats, 0, len(a.apps))
	for app, st := range a.apps {
		out = append(out, ScaleStats{
			App: app, Count: st.count,
			ScaleUps: st.scaleUps, ScaleDowns: st.scaleDowns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// String renders one app's scale state for the "autoscale" verb.
func (s ScaleStats) String() string {
	return fmt.Sprintf("%s count=%d scale_ups=%d scale_downs=%d",
		s.App, s.Count, s.ScaleUps, s.ScaleDowns)
}
