package controlplane

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"djinn/internal/events"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/sched"
	"djinn/internal/service"
)

// A Member is one replica under control-plane management: the
// controller activates and deactivates applications on it and reads
// its scheduler signals. The router handles the data path separately —
// a Member must already be registered with the router under the same
// ID.
type Member interface {
	ID() string
	// Activate warms app for serving (idempotent).
	Activate(app string) error
	// Deactivate drains app off the replica (idempotent).
	Deactivate(app string) error
	// SchedFor reports app's live scheduler state, false when the app
	// is not active here or has no scheduler.
	SchedFor(app string) (sched.Info, bool)
}

// ServerMember adapts an in-process service.Server as a Member. Apps
// listed in nets are (re)registered directly from their networks;
// anything else falls through to the server's model-store activation
// path.
type ServerMember struct {
	name string
	srv  *service.Server
	nets map[string]*nn.Net
	cfg  service.AppConfig
	cfgs map[string]service.AppConfig
}

// NewServerMember wraps srv. nets maps app name → network for apps the
// member can register directly (may be nil when a model store is
// attached); cfg is the batching config those registrations use.
func NewServerMember(name string, srv *service.Server, nets map[string]*nn.Net, cfg service.AppConfig) *ServerMember {
	return &ServerMember{name: name, srv: srv, nets: nets, cfg: cfg}
}

// SetAppConfig overrides the registration config for one app — apps
// with paper-specific batch shapes keep them while the rest share the
// member-wide default.
func (m *ServerMember) SetAppConfig(app string, cfg service.AppConfig) {
	if m.cfgs == nil {
		m.cfgs = map[string]service.AppConfig{}
	}
	m.cfgs[app] = cfg
}

// Server returns the wrapped server.
func (m *ServerMember) Server() *service.Server { return m.srv }

// ID returns the member's fleet-wide replica ID.
func (m *ServerMember) ID() string { return m.name }

// Activate implements Member.
func (m *ServerMember) Activate(app string) error {
	if netw, ok := m.nets[app]; ok {
		cfg, ok := m.cfgs[app]
		if !ok {
			cfg = m.cfg
		}
		err := m.srv.Register(app, netw, cfg)
		if err != nil && strings.Contains(err.Error(), "already registered") {
			return nil
		}
		return err
	}
	return m.srv.Activate(app)
}

// Deactivate implements Member.
func (m *ServerMember) Deactivate(app string) error {
	if _, ok := m.nets[app]; ok {
		err := m.srv.Unregister(app)
		if err != nil && strings.Contains(err.Error(), "unknown application") {
			return nil
		}
		return err
	}
	return m.srv.Deactivate(app)
}

// SchedFor implements Member.
func (m *ServerMember) SchedFor(app string) (sched.Info, bool) {
	return m.srv.SchedFor(app)
}

// Config parameterizes a Controller.
type Config struct {
	Router *router.Router
	// Mapper computes shard maps (nil = consistent hashing, one
	// replica per app).
	Mapper *Mapper
	// Autoscaler, when set, adjusts per-app counts from sched signals
	// on every Tick.
	Autoscaler *Autoscaler
	// Apps are the managed applications. Every managed app gets a
	// shard-map entry; apps outside this list (e.g. canary splits
	// installed by hand) are left alone.
	Apps []string
	// DeadAfter is how many consecutive Ticks a replica may stay
	// router-unhealthy before the controller declares it dead and
	// moves its assignments (default 3).
	DeadAfter int
	// DrainDelay is how long a reconcile waits before deactivating an
	// app on a replica the placement moved away from. A query that
	// picked the old replica just before the flip must be able to
	// finish: set this above the fleet's query deadline and the
	// drain can never turn a straggler into a non-retryable
	// unknown-application error. Zero drains immediately.
	DrainDelay time.Duration
	// Logf receives controller events (default: discard).
	Logf func(format string, args ...any)
	// Journal, when set, receives structured fleet events: membership
	// changes, placement flips (with their reconcile generation), and
	// autoscale decisions with the signal values that drove them.
	Journal *events.Journal
}

type memberState struct {
	m         Member
	unhealthy int // consecutive unhealthy ticks
	dead      bool
}

// sigKey identifies one (member, app) signal stream.
type sigKey struct{ member, app string }

// placeKey identifies one (member, app) assignment.
type placeKey struct{ member, app string }

// Controller is the reconciler: it owns the shard map, watches
// membership and health, applies the autoscaler's counts, and installs
// placement changes into the router with an activate → flip → drain
// ordering that never strands a query. New assignees are warmed before
// any traffic is pointed at them; the placement flip is atomic in the
// router; the drain of old assignees happens after the flip, so a
// straggler that still reaches a draining replica fails with a
// retryable shutdown error and the router retries it inside the new
// placement.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*memberState
	prevSig map[sigKey]sched.Info
	dirty   bool // membership changed since the last Tick reconcile

	// placeGen counts how many times an app has been (re)placed on a
	// member; a delayed drain captures the generation when scheduled
	// and aborts if the app returned to the replica in the meantime —
	// otherwise a drain queued by move N could tear down the live
	// assignment installed by move N+1. placeLocks serializes
	// activate/deactivate per (member, app) so the generation check
	// and the action are atomic.
	placeGen   map[placeKey]uint64
	placeLocks map[placeKey]*sync.Mutex

	rebalances     int64
	moves          int64
	activateErrs   int64
	lastRebalance  time.Duration
	lastRebalanced time.Time

	drains sync.WaitGroup

	runMu  sync.Mutex
	stopCh chan struct{}
	runWG  sync.WaitGroup
}

// NewController wires a controller; Config.Router is required.
func NewController(cfg Config) *Controller {
	if cfg.Router == nil {
		panic("controlplane: Config.Router is required")
	}
	if cfg.Mapper == nil {
		cfg.Mapper = NewMapper(MapperConfig{})
	}
	if cfg.DeadAfter < 1 {
		cfg.DeadAfter = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	sort.Strings(cfg.Apps)
	return &Controller{
		cfg:        cfg,
		members:    map[string]*memberState{},
		prevSig:    map[sigKey]sched.Info{},
		placeGen:   map[placeKey]uint64{},
		placeLocks: map[placeKey]*sync.Mutex{},
	}
}

// Mapper returns the controller's shard-map builder.
func (c *Controller) Mapper() *Mapper { return c.cfg.Mapper }

// journalf appends one control-plane event; a no-op without a journal.
func (c *Controller) journalf(kind events.Kind, format string, args ...any) {
	c.cfg.Journal.Appendf(kind, "controlplane", format, args...)
}

// Join adds (or replaces) a member. The caller must have registered
// the member's backend with the router under the same ID. Reconcile
// afterwards to fold it into the map.
func (c *Controller) Join(m Member) {
	c.mu.Lock()
	c.members[m.ID()] = &memberState{m: m}
	c.dirty = true
	c.mu.Unlock()
	c.cfg.Logf("controlplane: member %s joined", m.ID())
	c.journalf(events.KindMember, "%s joined the fleet", m.ID())
}

// Leave takes a member out of the live set (graceful decommission).
// Its assignments move on the next Reconcile, which also drains the
// moved apps off it; the member stays known so Revive (or a fresh
// Join) can bring it back.
func (c *Controller) Leave(id string) {
	c.mu.Lock()
	if st, ok := c.members[id]; ok {
		st.dead = true
		c.dirty = true
	}
	c.mu.Unlock()
	c.cfg.Logf("controlplane: member %s left", id)
	c.journalf(events.KindMember, "%s left the fleet (graceful)", id)
}

// Revive clears a member's dead mark after the operator (or harness)
// has restored it. Needed because a fully ejected replica receives no
// traffic and therefore no recovery probes — rejoin is an explicit
// control-plane action, not a data-path discovery.
func (c *Controller) Revive(id string) bool {
	c.mu.Lock()
	st, ok := c.members[id]
	if !ok {
		c.mu.Unlock()
		return false
	}
	st.dead = false
	st.unhealthy = 0
	c.dirty = true
	c.mu.Unlock()
	c.cfg.Logf("controlplane: member %s revived", id)
	c.journalf(events.KindMember, "%s revived by operator", id)
	return true
}

// MemberIDs returns every joined member ID, sorted, with its liveness.
func (c *Controller) MemberIDs() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.members))
	for id, st := range c.members {
		out[id] = !st.dead
	}
	return out
}

// liveMembers returns the live IDs (sorted) plus a lookup over every
// known member — drains must still reach a replica that just left.
func (c *Controller) liveMembers() ([]string, map[string]Member) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.members))
	byID := make(map[string]Member, len(c.members))
	for id, st := range c.members {
		byID[id] = st.m
		if !st.dead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, byID
}

// ReconcileResult summarizes one reconcile pass.
type ReconcileResult struct {
	Moves    int // apps whose placement changed
	Duration time.Duration
}

// Reconcile recomputes the shard map over the live members and applies
// the difference: for each changed app, activate the new assignees,
// flip the router placement, then drain removed assignees in the
// background. Returns how many apps moved and how long the pass took
// (activation included — that is the real rebalance time a query
// stream experiences).
func (c *Controller) Reconcile() ReconcileResult {
	start := time.Now()
	live, byID := c.liveMembers()
	desired := c.cfg.Mapper.Rebuild(c.cfg.Apps, live)
	current := c.cfg.Router.Placements()
	c.mu.Lock()
	gen := c.rebalances + 1 // this pass's reconcile generation
	c.mu.Unlock()

	moves := 0
	for _, app := range c.cfg.Apps {
		want := desired[app]
		have := current[app]
		if len(want) == 0 {
			if len(have) != 0 {
				c.cfg.Router.ClearPlacement(app)
				moves++
				c.journalf(events.KindPlacement, "gen %d: %s unplaced (no live members)", gen, app)
			}
			continue
		}
		if placementsEqual(want, have) {
			continue
		}
		haveSet := make(map[string]bool, len(have))
		for _, p := range have {
			haveSet[p.Replica] = true
		}
		wantSet := make(map[string]bool, len(want))
		for _, p := range want {
			wantSet[p.Replica] = true
			if m, ok := byID[p.Replica]; ok {
				lk := c.placeLock(p.Replica, app)
				lk.Lock()
				c.bumpGen(p.Replica, app)
				if !haveSet[p.Replica] {
					if err := m.Activate(app); err != nil {
						c.mu.Lock()
						c.activateErrs++
						c.mu.Unlock()
						c.cfg.Logf("controlplane: activate %s on %s: %v", app, p.Replica, err)
					}
				}
				lk.Unlock()
			}
		}
		if err := c.cfg.Router.SetPlacement(app, want...); err != nil {
			c.cfg.Logf("controlplane: set placement for %s: %v", app, err)
			continue
		}
		moves++
		for _, p := range have {
			if wantSet[p.Replica] {
				continue
			}
			if m, ok := byID[p.Replica]; ok {
				gen := c.genOf(p.Replica, app)
				c.drains.Add(1)
				go func(m Member, app string, gen uint64) {
					defer c.drains.Done()
					if c.cfg.DrainDelay > 0 {
						time.Sleep(c.cfg.DrainDelay)
					}
					lk := c.placeLock(m.ID(), app)
					lk.Lock()
					defer lk.Unlock()
					if c.genOf(m.ID(), app) != gen {
						return // the app was placed here again: keep it
					}
					if err := m.Deactivate(app); err != nil {
						c.cfg.Logf("controlplane: deactivate %s on %s: %v", app, m.ID(), err)
					}
				}(m, app, gen)
			}
		}
		c.cfg.Logf("controlplane: moved %s → %v", app, want)
		c.journalf(events.KindPlacement, "gen %d: %s → %s", gen, app, renderAssignees(want))
	}

	d := time.Since(start)
	c.mu.Lock()
	c.rebalances++
	c.moves += int64(moves)
	if moves > 0 {
		c.lastRebalance = d
		c.lastRebalanced = time.Now()
	}
	c.mu.Unlock()
	return ReconcileResult{Moves: moves, Duration: d}
}

func (c *Controller) placeLock(member, app string) *sync.Mutex {
	k := placeKey{member: member, app: app}
	c.mu.Lock()
	defer c.mu.Unlock()
	lk, ok := c.placeLocks[k]
	if !ok {
		lk = &sync.Mutex{}
		c.placeLocks[k] = lk
	}
	return lk
}

func (c *Controller) bumpGen(member, app string) {
	c.mu.Lock()
	c.placeGen[placeKey{member: member, app: app}]++
	c.mu.Unlock()
}

func (c *Controller) genOf(member, app string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placeGen[placeKey{member: member, app: app}]
}

func placementsEqual(a, b []router.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WaitDrains blocks until every background deactivation has finished
// (tests and shutdown use it).
func (c *Controller) WaitDrains() { c.drains.Wait() }

// Tick runs one control-loop iteration at the given time: scan router
// health for member death and recovery, evaluate the autoscaler on
// fresh sched signals, and reconcile if anything changed. The clock is
// a parameter so tests replay schedules without sleeping.
func (c *Controller) Tick(now time.Time) ReconcileResult {
	c.mu.Lock()
	changed := c.dirty
	c.dirty = false
	c.mu.Unlock()
	changed = c.scanHealth() || changed
	if c.cfg.Autoscaler != nil {
		changed = c.autoscale(now) || changed
	}
	if changed {
		return c.Reconcile()
	}
	return ReconcileResult{}
}

// scanHealth folds router health into membership: DeadAfter
// consecutive unhealthy observations mark a member dead (its
// assignments move on the reconcile this triggers); a replica observed
// healthy again resets the count. Dead members stay dead until Revive.
func (c *Controller) scanHealth() bool {
	healthy := make(map[string]bool)
	for _, snap := range c.cfg.Router.Stats() {
		healthy[snap.ID] = snap.Healthy
	}
	changed := false
	var dead []string
	c.mu.Lock()
	for id, st := range c.members {
		if st.dead {
			continue
		}
		h, known := healthy[id]
		if !known || h {
			st.unhealthy = 0
			continue
		}
		st.unhealthy++
		if st.unhealthy >= c.cfg.DeadAfter {
			st.dead = true
			changed = true
			dead = append(dead, fmt.Sprintf("%s declared dead after %d unhealthy ticks", id, st.unhealthy))
			c.cfg.Logf("controlplane: member %s declared dead after %d unhealthy ticks", id, st.unhealthy)
		}
	}
	c.mu.Unlock()
	for _, msg := range dead {
		c.journalf(events.KindMember, "%s", msg)
	}
	return changed
}

// autoscale aggregates each managed app's interval sched signals
// across live members and feeds the autoscaler; a changed count is
// written into the mapper. Returns whether any count changed.
func (c *Controller) autoscale(now time.Time) bool {
	live, byID := c.liveMembers()
	changed := false
	for _, app := range c.cfg.Apps {
		var admitted, rejected int64
		var p99, slo time.Duration
		got := false
		for _, id := range live {
			m := byID[id]
			info, ok := m.SchedFor(app)
			if !ok {
				continue
			}
			got = true
			key := sigKey{member: id, app: app}
			c.mu.Lock()
			prev := c.prevSig[key]
			c.prevSig[key] = info
			c.mu.Unlock()
			dAdm := info.Admitted - prev.Admitted
			dRej := info.Rejected - prev.Rejected
			if dAdm < 0 || dRej < 0 { // replica restarted: counters reset
				dAdm, dRej = info.Admitted, info.Rejected
			}
			admitted += dAdm
			rejected += dRej
			if info.P99 > p99 {
				p99 = info.P99
			}
			if info.SLO > slo {
				slo = info.SLO
			}
		}
		if !got {
			continue
		}
		obs := Observation{P99: p99, SLO: slo}
		if total := admitted + rejected; total > 0 {
			obs.ShedRate = float64(rejected) / float64(total)
		}
		dec := c.cfg.Autoscaler.Observe(app, now, obs)
		if dec.Changed {
			c.cfg.Mapper.SetCount(app, dec.Count)
			changed = true
			c.cfg.Logf("controlplane: autoscale %s → %d replicas (shed %.3f, p99 %v)",
				app, dec.Count, obs.ShedRate, obs.P99)
			c.journalf(events.KindAutoscale, "%s → %d replicas (shed %.3f, p99 %v, slo %v)",
				app, dec.Count, obs.ShedRate, obs.P99, obs.SLO)
		}
	}
	return changed
}

// Run ticks the control loop every interval until Stop.
func (c *Controller) Run(interval time.Duration) {
	c.runMu.Lock()
	if c.stopCh != nil {
		c.runMu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.stopCh = stop
	c.runMu.Unlock()
	c.runWG.Add(1)
	go func() {
		defer c.runWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				c.Tick(now)
			}
		}
	}()
}

// Stop halts the Run loop and waits for background drains.
func (c *Controller) Stop() {
	c.runMu.Lock()
	if c.stopCh != nil {
		close(c.stopCh)
		c.stopCh = nil
	}
	c.runMu.Unlock()
	c.runWG.Wait()
	c.drains.Wait()
}

// Metrics is the control plane's admin-plane snapshot.
type Metrics struct {
	Members, Dead  int
	Rebalances     int64
	Moves          int64
	ActivateErrors int64
	LastRebalance  time.Duration
	Scales         []ScaleStats
	Placements     map[string][]router.Placement
}

// Snapshot collects the djinn_placement_* / djinn_autoscale_* gauges.
func (c *Controller) Snapshot() Metrics {
	c.mu.Lock()
	m := Metrics{
		Members:        len(c.members),
		Rebalances:     c.rebalances,
		Moves:          c.moves,
		ActivateErrors: c.activateErrs,
		LastRebalance:  c.lastRebalance,
	}
	for _, st := range c.members {
		if st.dead {
			m.Dead++
		}
	}
	c.mu.Unlock()
	if c.cfg.Autoscaler != nil {
		m.Scales = c.cfg.Autoscaler.Stats()
	}
	m.Placements = c.cfg.Router.Placements()
	return m
}

// Control answers the control plane's verb family, served through the
// front-end proxy:
//
//	placement [app]      the shard map (replica:weight per app)
//	members              member liveness
//	autoscale [app]      autoscaler counts and counters
//	scale <app> <n>      pin an app's replica count and reconcile
//	rebalance            force a reconcile pass
func (c *Controller) Control(cmd string) (string, error) {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", errors.New("controlplane: empty control command")
	}
	switch fields[0] {
	case "placement":
		pls := c.cfg.Router.Placements()
		if len(fields) == 2 {
			pl, ok := pls[fields[1]]
			if !ok {
				return "", fmt.Errorf("controlplane: no placement for %q", fields[1])
			}
			return renderPlacement(fields[1], pl), nil
		}
		if len(pls) == 0 {
			return "no placements installed", nil
		}
		apps := make([]string, 0, len(pls))
		for app := range pls {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		lines := make([]string, len(apps))
		for i, app := range apps {
			lines[i] = renderPlacement(app, pls[app])
		}
		return strings.Join(lines, "\n"), nil
	case "members":
		ids := c.MemberIDs()
		if len(ids) == 0 {
			return "no members", nil
		}
		names := make([]string, 0, len(ids))
		for id := range ids {
			names = append(names, id)
		}
		sort.Strings(names)
		lines := make([]string, len(names))
		for i, id := range names {
			state := "live"
			if !ids[id] {
				state = "dead"
			}
			lines[i] = id + " " + state
		}
		return strings.Join(lines, "\n"), nil
	case "autoscale":
		if c.cfg.Autoscaler == nil {
			return "disabled", nil
		}
		stats := c.cfg.Autoscaler.Stats()
		if len(fields) == 2 {
			for _, s := range stats {
				if s.App == fields[1] {
					return s.String(), nil
				}
			}
			return "", fmt.Errorf("controlplane: no autoscale state for %q", fields[1])
		}
		if len(stats) == 0 {
			return "no apps observed", nil
		}
		lines := make([]string, len(stats))
		for i, s := range stats {
			lines[i] = s.String()
		}
		return strings.Join(lines, "\n"), nil
	case "scale":
		if len(fields) != 3 {
			return "", errors.New("controlplane: usage: scale <app> <count>")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return "", fmt.Errorf("controlplane: bad count %q", fields[2])
		}
		app := fields[1]
		if !c.managed(app) {
			return "", fmt.Errorf("controlplane: unmanaged application %q", app)
		}
		if c.cfg.Autoscaler != nil {
			n = c.cfg.Autoscaler.SetCount(app, n)
		}
		c.cfg.Mapper.SetCount(app, n)
		res := c.Reconcile()
		return fmt.Sprintf("scaled %s to %d replicas (%d moves, %v)", app, n, res.Moves, res.Duration.Round(time.Microsecond)), nil
	case "rebalance":
		res := c.Reconcile()
		return fmt.Sprintf("rebalanced: %d moves in %v", res.Moves, res.Duration.Round(time.Microsecond)), nil
	default:
		return "", fmt.Errorf("controlplane: unknown control command %q", fields[0])
	}
}

func (c *Controller) managed(app string) bool {
	for _, a := range c.cfg.Apps {
		if a == app {
			return true
		}
	}
	return false
}

func renderAssignees(pl []router.Placement) string {
	parts := make([]string, len(pl))
	for i, p := range pl {
		parts[i] = fmt.Sprintf("%s:%d", p.Replica, p.Weight)
	}
	return strings.Join(parts, " ")
}

func renderPlacement(app string, pl []router.Placement) string {
	return app + " " + renderAssignees(pl)
}
