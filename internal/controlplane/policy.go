// Package controlplane places applications onto a fleet of DjiNN
// replicas and keeps the placement healthy: a shard map (app → weighted
// replica set) computed by a pluggable placement policy, a reconciler
// that moves assignments when membership changes without dropping
// in-flight queries, and an autoscaler that grows and shrinks per-app
// replica counts from the scheduler's shed-rate and p99 signals.
//
// The paper's WSC analysis sizes a datacenter by packing DjiNN
// instances per workload; this package is that packing made live.
// Placement policy is deliberately separated from the backend tier
// (the router only enforces weighted subsets) so a later heterogeneous
// fleet can bias placement by device without touching the data path.
package controlplane

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// PlaceInput is one placement decision's inputs.
type PlaceInput struct {
	App     string
	Want    int      // desired replica count (≥1)
	Members []string // live replica IDs, deduplicated
	Prev    []string // the app's previous assignment, if any
	// Load is an optional per-member load signal (assigned apps so
	// far, outstanding queries, …); nil reads as all-zero.
	Load map[string]float64
}

// A Policy deterministically chooses which replicas serve an app.
// Implementations must be pure: same input, same output, no clocks.
type Policy interface {
	Name() string
	// Place returns min(Want, len(Members)) distinct member IDs.
	Place(in PlaceInput) []string
}

// ---------------------------------------------------------------------
// Consistent hashing

// ConsistentHash places apps on a hash ring with virtual nodes, the
// classic minimal-churn policy: when a member leaves, only the apps it
// carried move; when one joins, it takes an ~1/N share and nothing else
// shifts. Placement depends only on (app, membership), never on
// placement history, so every controller replays to the same map.
type ConsistentHash struct {
	// VirtualNodes per member smooths the ring (default 64).
	VirtualNodes int
}

func (c ConsistentHash) Name() string { return "consistent-hash" }

func (c ConsistentHash) vnodes() int {
	if c.VirtualNodes <= 0 {
		return 64
	}
	return c.VirtualNodes
}

// hash64 is FNV-64a with a murmur-style finalizer. Raw FNV of short,
// similar keys ("app000", "app001", …) varies mostly in its low bits,
// which collapses a ring ordered by the full value onto a narrow arc;
// the multiply-xor-shift mix spreads those differences across all 64
// bits.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

type ringPoint struct {
	pos    uint64
	member string
}

// Place walks the ring clockwise from hash(app), collecting distinct
// members until Want are found.
func (c ConsistentHash) Place(in PlaceInput) []string {
	members := dedupSorted(in.Members)
	want := clampWant(in.Want, len(members))
	if want == 0 {
		return nil
	}
	ring := make([]ringPoint, 0, len(members)*c.vnodes())
	for _, m := range members {
		for v := 0; v < c.vnodes(); v++ {
			ring = append(ring, ringPoint{hash64(m + "#" + strconv.Itoa(v)), m})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].pos != ring[j].pos {
			return ring[i].pos < ring[j].pos
		}
		return ring[i].member < ring[j].member
	})
	start := sort.Search(len(ring), func(i int) bool {
		return ring[i].pos >= hash64(in.App)
	})
	picked := make([]string, 0, want)
	seen := make(map[string]bool, want)
	for i := 0; i < len(ring) && len(picked) < want; i++ {
		p := ring[(start+i)%len(ring)]
		if !seen[p.member] {
			seen[p.member] = true
			picked = append(picked, p.member)
		}
	}
	return picked
}

// ---------------------------------------------------------------------
// Least loaded

// LeastLoaded greedily assigns apps to the members with the lowest load
// signal, holding on to an app's surviving previous assignees so a
// load wobble doesn't shuffle the whole map: previous members are kept
// (up to Want) regardless of load, and only the remainder is filled
// from the least-loaded members. Ties break by member ID, so the
// policy stays deterministic.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Place(in PlaceInput) []string {
	members := dedupSorted(in.Members)
	want := clampWant(in.Want, len(members))
	if want == 0 {
		return nil
	}
	alive := make(map[string]bool, len(members))
	for _, m := range members {
		alive[m] = true
	}
	picked := make([]string, 0, want)
	used := make(map[string]bool, want)
	for _, p := range in.Prev {
		if len(picked) == want {
			break
		}
		if alive[p] && !used[p] {
			used[p] = true
			picked = append(picked, p)
		}
	}
	rest := make([]string, 0, len(members))
	for _, m := range members {
		if !used[m] {
			rest = append(rest, m)
		}
	}
	sort.SliceStable(rest, func(i, j int) bool {
		li, lj := in.Load[rest[i]], in.Load[rest[j]]
		if li != lj {
			return li < lj
		}
		return rest[i] < rest[j]
	})
	for _, m := range rest {
		if len(picked) == want {
			break
		}
		picked = append(picked, m)
	}
	return picked
}

func clampWant(want, members int) int {
	if want < 1 {
		want = 1
	}
	if want > members {
		want = members
	}
	return want
}

func dedupSorted(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	j := 0
	for i, id := range out {
		if i == 0 || id != out[i-1] {
			out[j] = id
			j++
		}
	}
	return out[:j]
}
