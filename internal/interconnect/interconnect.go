// Package interconnect models the CPU↔GPU links of Section 6: PCI
// Express generations and Intel QPI, with per-transfer timing and the
// aggregate-bandwidth figures the WSC designs are provisioned around.
package interconnect

import "fmt"

// Link is one interconnect technology instance.
type Link struct {
	Name string
	// BytesPerSec is the usable unidirectional bandwidth.
	BytesPerSec float64
	// Latency is the fixed per-transfer cost (DMA setup, traversal).
	Latency float64
}

// TransferTime returns the time to move n bytes across the link.
func (l Link) TransferTime(n float64) float64 {
	if n < 0 {
		panic("interconnect: negative transfer size")
	}
	if l.BytesPerSec <= 0 {
		panic(fmt.Sprintf("interconnect: link %s has no bandwidth", l.Name))
	}
	return l.Latency + n/l.BytesPerSec
}

// PCIe generation parameters: per-lane effective throughput after
// encoding overhead (8b/10b for gen 1-2, 128b/130b from gen 3).
var pciePerLane = map[int]float64{
	1: 250e6,
	2: 500e6,
	3: 984.6e6, // 0.9846 GB/s → x16 = 15.75 GB/s, the paper's figure
	4: 1969e6,  // x16 = 31.5 GB/s ≈ the paper's 31.75
	5: 3938e6,
}

// PCIe returns a PCIe link of the given generation and lane count.
func PCIe(gen, lanes int) Link {
	perLane, ok := pciePerLane[gen]
	if !ok {
		panic(fmt.Sprintf("interconnect: unknown PCIe generation %d", gen))
	}
	if lanes <= 0 || lanes > 32 {
		panic(fmt.Sprintf("interconnect: implausible lane count %d", lanes))
	}
	return Link{
		Name:        fmt.Sprintf("PCIe v%d x%d", gen, lanes),
		BytesPerSec: perLane * float64(lanes),
		Latency:     3e-6,
	}
}

// QPILinkBW is one Quick Path Interconnect link's bandwidth (Section
// 6.4: "standard QPI links available at the time of this writing yield
// 25.6 GB/s").
const QPILinkBW = 25.6e9

// QPI returns an aggregate of n point-to-point QPI links (the paper's
// future design uses 12: 6 per socket for 12 GPUs → 307.2 GB/s).
func QPI(links int) Link {
	if links <= 0 {
		panic("interconnect: need at least one QPI link")
	}
	return Link{
		Name:        fmt.Sprintf("QPI x%d", links),
		BytesPerSec: QPILinkBW * float64(links),
		Latency:     1e-6,
	}
}

// HostComplex returns the aggregate host root-complex bandwidth of a
// multi-socket server: sockets × one x16 link of the generation (each
// socket's 40 lanes realistically sustain about one x16's worth of
// concurrent DMA traffic once oversubscribed across slots).
func HostComplex(gen, sockets int) Link {
	one := PCIe(gen, 16)
	return Link{
		Name:        fmt.Sprintf("%d-socket PCIe v%d root complex", sockets, gen),
		BytesPerSec: one.BytesPerSec * float64(sockets),
		Latency:     one.Latency,
	}
}
