package interconnect

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPCIeBandwidths(t *testing.T) {
	// The paper's figures: PCIe v3 x16 = 15.75 GB/s, v4 doubles it.
	v3 := PCIe(3, 16)
	if math.Abs(v3.BytesPerSec-15.75e9) > 0.01e9 {
		t.Fatalf("v3 x16 = %.4g, want 15.75e9", v3.BytesPerSec)
	}
	v4 := PCIe(4, 16)
	if r := v4.BytesPerSec / v3.BytesPerSec; math.Abs(r-2) > 0.01 {
		t.Fatalf("v4/v3 ratio %v, want 2", r)
	}
	// Lanes scale linearly.
	if x8 := PCIe(3, 8); math.Abs(x8.BytesPerSec*2-v3.BytesPerSec) > 1 {
		t.Fatal("lane scaling broken")
	}
}

func TestPCIeRejectsBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { PCIe(7, 16) },
		func() { PCIe(3, 0) },
		func() { PCIe(3, 64) },
		func() { QPI(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQPIAggregate(t *testing.T) {
	// Section 6.4: 12 QPI links = 307.2 GB/s.
	q := QPI(12)
	if math.Abs(q.BytesPerSec-307.2e9) > 1 {
		t.Fatalf("12 QPI links = %.4g, want 307.2e9", q.BytesPerSec)
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{Name: "test", BytesPerSec: 1e9, Latency: 1e-6}
	if got := l.TransferTime(1e9); math.Abs(got-1.000001) > 1e-12 {
		t.Fatalf("transfer %v", got)
	}
	if got := l.TransferTime(0); got != 1e-6 {
		t.Fatalf("zero transfer should cost latency only, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative size should panic")
		}
	}()
	l.TransferTime(-1)
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	l := PCIe(3, 16)
	f := func(aRaw, bRaw uint32) bool {
		a := float64(aRaw)
		b := a + float64(bRaw)
		return l.TransferTime(b) >= l.TransferTime(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHostComplex(t *testing.T) {
	h := HostComplex(3, 2)
	if math.Abs(h.BytesPerSec-31.5e9) > 0.05e9 {
		t.Fatalf("dual-socket v3 complex %.4g, want ≈31.5e9", h.BytesPerSec)
	}
}
