package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	runtimemetrics "runtime/metrics"
	"strconv"
	"time"

	"djinn/internal/alerts"
	"djinn/internal/events"
	"djinn/internal/timeseries"
)

// serveEvents renders the fleet journal as JSON:
//
//	/events              the most recent 100 events
//	/events?n=25         the most recent 25
//	/events?since=42     every retained event with seq > 42 (tail -f cursors)
//	/events?kind=markdown[&n=]  filtered by kind
func serveEvents(w http.ResponseWriter, r *http.Request, j *events.Journal) {
	if j == nil {
		http.Error(w, "no event journal attached", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	var evs []events.Event
	switch {
	case q.Get("since") != "":
		seq, err := strconv.ParseUint(q.Get("since"), 10, 64)
		if err != nil {
			http.Error(w, "bad ?since=", http.StatusBadRequest)
			return
		}
		evs = j.Since(seq)
	case q.Get("kind") != "":
		evs = j.Filter(events.Kind(q.Get("kind")), atoiDefault(q.Get("n"), 100))
	default:
		evs = j.Recent(atoiDefault(q.Get("n"), 100))
	}
	if evs == nil {
		evs = []events.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		LastSeq uint64         `json:"last_seq"`
		Events  []events.Event `json:"events"`
	}{j.LastSeq(), evs})
}

func atoiDefault(s string, def int) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return def
	}
	return n
}

// DashResponse is the /dash payload: the collector's fleet rollups plus
// the alert engine's states and the journal's most recent entries — one
// poll gives `tonic top` everything a refresh needs.
type DashResponse struct {
	timeseries.Dash
	Alerts []alerts.Status `json:"alerts,omitempty"`
	Events []events.Event  `json:"events,omitempty"`
}

func serveDash(w http.ResponseWriter, r *http.Request, opts Options) {
	if opts.Collector == nil {
		http.Error(w, "no fleet collector attached", http.StatusNotFound)
		return
	}
	window := opts.DashWindow
	if s := r.URL.Query().Get("window"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			window = d
		}
	}
	resp := DashResponse{Dash: opts.Collector.Dash(window, atoiDefault(r.URL.Query().Get("spark"), 30))}
	if opts.Alerts != nil {
		resp.Alerts = opts.Alerts.Status()
	}
	if opts.Journal != nil {
		resp.Events = opts.Journal.Recent(atoiDefault(r.URL.Query().Get("events"), 8))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// writeRequestLatency renders each app's end-to-end served-latency
// histogram with OpenMetrics-style exemplars: a bucket that retained a
// traced sample carries `# {trace_id="..."} <seconds>` so a scrape can
// jump from a latency bucket straight to /trace?id= and /slowlog.
func writeRequestLatency(w io.Writer, opts Options) {
	printed := false
	for _, rep := range opts.Replicas {
		if rep.Server == nil {
			continue
		}
		for _, app := range sortedApps(rep.Server) {
			h, ok := rep.Server.RequestHistogram(app)
			if !ok || h.Count == 0 {
				continue
			}
			if !printed {
				fmt.Fprintln(w, "# HELP djinn_request_latency_seconds End-to-end served latency (enqueue to response), with trace-ID exemplars.")
				fmt.Fprintln(w, "# TYPE djinn_request_latency_seconds histogram")
				printed = true
			}
			writeHistogram(w, "djinn_request_latency_seconds",
				fmt.Sprintf("replica=%q,app=%q", rep.Name, app), h)
		}
	}
}

// writeFleetMetrics renders the collector's rollups: fleet QPS and the
// merged-histogram quantiles (the true fleet tail, not an average of
// per-replica quantiles).
func writeFleetMetrics(w io.Writer, c *timeseries.Collector, window time.Duration) {
	apps := c.Apps()
	if len(apps) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP djinn_fleet_qps Fleet-wide completed queries per second (last collector tick).")
	fmt.Fprintln(w, "# TYPE djinn_fleet_qps gauge")
	for _, app := range apps {
		if fs := c.App(app); fs != nil {
			if last, ok := fs.QPS.Last(); ok {
				fmt.Fprintf(w, "djinn_fleet_qps{app=%q} %g\n", app, last.Value)
			}
		}
	}
	fmt.Fprintln(w, "# HELP djinn_fleet_latency_quantile_seconds Fleet latency quantiles from merged per-replica histograms.")
	fmt.Fprintln(w, "# TYPE djinn_fleet_latency_quantile_seconds gauge")
	for _, app := range apps {
		for _, q := range []struct {
			label string
			p     float64
		}{{"0.5", 0.5}, {"0.99", 0.99}} {
			if d := c.FleetQuantile(app, q.p, window); d > 0 {
				fmt.Fprintf(w, "djinn_fleet_latency_quantile_seconds{app=%q,quantile=%q} %g\n", app, q.label, d.Seconds())
			}
		}
	}
	fmt.Fprintln(w, "# HELP djinn_fleet_error_rate Fraction of windowed demand that violated the SLO (shed, errored, expired, or served over-SLO).")
	fmt.Fprintln(w, "# TYPE djinn_fleet_error_rate gauge")
	for _, app := range apps {
		if rate, _, ok := c.ErrorRate(app, window); ok {
			fmt.Fprintf(w, "djinn_fleet_error_rate{app=%q} %g\n", app, rate)
		}
	}
	fmt.Fprintln(w, "# HELP djinn_collector_self_seconds Cumulative time the collector spent sampling (overhead accounting).")
	fmt.Fprintln(w, "# TYPE djinn_collector_self_seconds counter")
	fmt.Fprintf(w, "djinn_collector_self_seconds %g\n", c.SelfTime().Seconds())
	fmt.Fprintln(w, "# HELP djinn_collector_ticks_total Collector sampling passes completed.")
	fmt.Fprintln(w, "# TYPE djinn_collector_ticks_total counter")
	fmt.Fprintf(w, "djinn_collector_ticks_total %d\n", c.Ticks())
}

// writeAlertMetrics renders the burn-rate engine: a 0/1 firing gauge, a
// numeric state, the live burn values, and the lifetime fire counter.
func writeAlertMetrics(w io.Writer, e *alerts.Engine) {
	sts := e.Status()
	if len(sts) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP djinn_alert_firing Whether the app's SLO burn-rate alert is firing (1) or not (0).")
	fmt.Fprintln(w, "# TYPE djinn_alert_firing gauge")
	for _, st := range sts {
		v := 0
		if st.State == alerts.Firing {
			v = 1
		}
		fmt.Fprintf(w, "djinn_alert_firing{app=%q} %d\n", st.Rule.App, v)
	}
	fmt.Fprintln(w, "# HELP djinn_alert_state Alert lifecycle state (0 inactive, 1 pending, 2 firing, 3 resolved).")
	fmt.Fprintln(w, "# TYPE djinn_alert_state gauge")
	for _, st := range sts {
		fmt.Fprintf(w, "djinn_alert_state{app=%q,state=%q} %d\n", st.Rule.App, st.StateStr, int(st.State))
	}
	fmt.Fprintln(w, "# HELP djinn_alert_burn Current burn-rate multiple per evaluation window.")
	fmt.Fprintln(w, "# TYPE djinn_alert_burn gauge")
	for _, st := range sts {
		fmt.Fprintf(w, "djinn_alert_burn{app=%q,window=\"fast\"} %g\n", st.Rule.App, st.FastBurn)
		fmt.Fprintf(w, "djinn_alert_burn{app=%q,window=\"slow\"} %g\n", st.Rule.App, st.SlowBurn)
	}
	fmt.Fprintln(w, "# HELP djinn_alert_fires_total Times the alert has transitioned to firing.")
	fmt.Fprintln(w, "# TYPE djinn_alert_fires_total counter")
	for _, st := range sts {
		fmt.Fprintf(w, "djinn_alert_fires_total{app=%q} %d\n", st.Rule.App, st.Fires)
	}
}

// runtimeSamples is the fixed set of runtime/metrics samples the
// djinn_runtime_* family exports. Sampling a fixed list (instead of
// metrics.All) keeps the scrape stable across Go releases.
var runtimeSamples = []struct {
	source string // runtime/metrics name
	name   string // exported name
	help   string
	kind   string // "gauge" or "counter" for scalars, "histogram"
}{
	{"/memory/classes/heap/objects:bytes", "djinn_runtime_heap_objects_bytes", "Bytes of live heap objects.", "gauge"},
	{"/memory/classes/total:bytes", "djinn_runtime_memory_total_bytes", "All memory mapped by the Go runtime.", "gauge"},
	{"/sched/goroutines:goroutines", "djinn_runtime_goroutines", "Live goroutines.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "djinn_runtime_gc_cycles_total", "Completed GC cycles.", "counter"},
	{"/gc/heap/allocs:bytes", "djinn_runtime_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.", "counter"},
	{"/gc/pauses:seconds", "djinn_runtime_gc_pause_seconds", "Stop-the-world GC pause distribution.", "histogram"},
	{"/sched/latencies:seconds", "djinn_runtime_sched_latency_seconds", "Goroutine scheduling latency distribution.", "histogram"},
}

// writeRuntimeMetrics renders the djinn_runtime_* family from the
// runtime/metrics package: GC pause and scheduler-latency histograms
// plus heap and goroutine gauges. These answer the "is the tail the
// service's fault or the runtime's?" question a latency incident always
// raises.
func writeRuntimeMetrics(w io.Writer) {
	samples := make([]runtimemetrics.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].source
	}
	runtimemetrics.Read(samples)
	for i, def := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case runtimemetrics.KindUint64:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
				def.name, def.help, def.name, def.kind, def.name, samples[i].Value.Uint64())
		case runtimemetrics.KindFloat64:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
				def.name, def.help, def.name, def.kind, def.name, samples[i].Value.Float64())
		case runtimemetrics.KindFloat64Histogram:
			h := samples[i].Value.Float64Histogram()
			if h == nil {
				continue
			}
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", def.name, def.help, def.name)
			writeRuntimeHistogram(w, def.name, h)
		}
	}
}

// writeRuntimeHistogram renders a runtime Float64Histogram compacted to
// at most 16 le-buckets — the runtime's native resolution (hundreds of
// buckets) would dwarf the rest of the scrape.
func writeRuntimeHistogram(w io.Writer, name string, h *runtimemetrics.Float64Histogram) {
	type bucket struct {
		le  float64
		cum uint64
	}
	var bs []bucket
	var cum uint64
	for i, count := range h.Counts {
		cum += count
		// Upper bound of bucket i is Buckets[i+1].
		bs = append(bs, bucket{le: h.Buckets[i+1], cum: cum})
	}
	// Compact: keep every bucket whose cumulative count changed, capped.
	var kept []bucket
	var prev uint64
	for _, b := range bs {
		if b.cum != prev || len(kept) == 0 {
			kept = append(kept, b)
			prev = b.cum
		}
	}
	if len(kept) > 16 {
		stride := (len(kept) + 15) / 16
		var thin []bucket
		for i := 0; i < len(kept); i += stride {
			thin = append(thin, kept[i])
		}
		if thin[len(thin)-1].cum != cum {
			thin = append(thin, kept[len(kept)-1])
		}
		kept = thin
	}
	for _, b := range kept {
		le := "+Inf"
		if !isInf(b.le) {
			le = strconv.FormatFloat(b.le, 'g', 6, 64)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.cum)
	}
	if len(kept) == 0 || isFinite(kept[len(kept)-1].le) {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	}
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

func isInf(f float64) bool    { return f > 1e308 || f < -1e308 }
func isFinite(f float64) bool { return !isInf(f) }
