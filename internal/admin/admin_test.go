package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"djinn/internal/controlplane"
	"djinn/internal/modelstore"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
	"djinn/internal/trace"
)

func silence(string, ...any) {}

func testNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("tiny", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// adminFixture runs a tiny fleet (router over one in-process replica),
// sends traced traffic through it, and returns a handler exporting it.
func adminFixture(t *testing.T) (Options, string) {
	t.Helper()
	srv := service.NewServer()
	srv.SetLogger(silence)
	t.Cleanup(srv.Close)
	srv.SetTraceStore(trace.NewStore("replica-0", 64))
	if err := srv.Register("tiny", testNet(1), service.AppConfig{
		BatchInstances: 1, Workers: 1, SLO: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	rt := router.New(router.Config{})
	t.Cleanup(rt.Close)
	if err := rt.AddBackend("replica-0", srv); err != nil {
		t.Fatal(err)
	}

	id := trace.NewID()
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := rt.InferCtx(trace.WithID(context.Background(), id), "tiny", in); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Infer("tiny", in); err != nil {
		t.Fatal(err)
	}

	return Options{
		Replicas: []Replica{{Name: "replica-0", Server: srv}},
		Router:   rt,
		Stores:   []*trace.Store{rt.TraceStore(), srv.TraceStore()},
		SlowLog:  5,
	}, id
}

func get(t *testing.T, opts Options, url string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	NewHandler(opts).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec.Code, rec.Body.String()
}

func TestMetricsExposition(t *testing.T) {
	testutil.NoLeaks(t)
	opts, _ := adminFixture(t)
	code, body := get(t, opts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`djinn_build_info{goversion=`,
		`djinn_app_events_total{replica="replica-0",app="tiny",event="queries"} 2`,
		`djinn_app_events_total{replica="replica-0",app="tiny",event="shed_admission"} 0`,
		`djinn_app_events_total{replica="replica-0",app="tiny",event="shed_expired"} 0`,
		`djinn_app_events_total{replica="replica-0",app="tiny",event="expired"} 0`,
		`djinn_app_events_total{replica="replica-0",app="tiny",event="errors"} 0`,
		`djinn_stage_latency_seconds_bucket{replica="replica-0",app="tiny",stage="forward",le="+Inf"} 2`,
		`djinn_stage_latency_seconds_count{replica="replica-0",app="tiny",stage="queue_wait"} 2`,
		`djinn_stage_latency_seconds_sum{replica="replica-0",app="tiny",stage="forward"}`,
		`djinn_stage_latency_quantile_seconds{replica="replica-0",app="tiny",stage="forward",quantile="0.99"}`,
		`djinn_recent_qps{replica="replica-0"}`,
		`djinn_backend_events_total{backend="replica-0",event="sent"} 2`,
		`djinn_backend_events_total{backend="replica-0",event="ok"} 2`,
		`djinn_backend_events_total{backend="replica-0",event="backpressure"} 0`,
		`djinn_backend_healthy{backend="replica-0"} 1`,
		`djinn_backend_outstanding{backend="replica-0"} 0`,
		`djinn_backend_pressure{backend="replica-0"} 0`,
		`djinn_sched_batch_size{replica="replica-0",app="tiny",priority="throughput"} 1`,
		`djinn_sched_slo_seconds{replica="replica-0",app="tiny",priority="throughput"} 1`,
		`djinn_sched_admission_rate{replica="replica-0",app="tiny",priority="throughput"} 1`,
		`djinn_sched_queued_instances{replica="replica-0",app="tiny",priority="throughput"} 0`,
		`djinn_traces_retained{tier="router"} 1`,
		`djinn_traces_retained{tier="replica-0"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if t.Failed() {
		t.Log(body)
	}
}

func TestMetricsHistogramBucketsCumulative(t *testing.T) {
	testutil.NoLeaks(t)
	opts, _ := adminFixture(t)
	_, body := get(t, opts, "/metrics")
	// Cumulative buckets must be monotonically non-decreasing within
	// one series, ending at the _count value.
	prefix := `djinn_stage_latency_seconds_bucket{replica="replica-0",app="tiny",stage="forward",`
	var last int64 = -1
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		n++
		// An exemplar suffix (` # {trace_id="..."} 0.0042`) follows the
		// bucket value; strip it before parsing.
		if idx := strings.Index(line, " # "); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if v < last {
			t.Fatalf("bucket series not cumulative: %d after %d in %q", v, last, line)
		}
		last = v
	}
	if n == 0 {
		t.Fatal("no forward bucket lines found")
	}
	if last != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", last)
	}
}

func TestSlowlogAndTrace(t *testing.T) {
	testutil.NoLeaks(t)
	opts, id := adminFixture(t)

	code, body := get(t, opts, "/slowlog")
	if code != 200 {
		t.Fatalf("/slowlog status %d", code)
	}
	var entries []SlowEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("slowlog not JSON: %v\n%s", err, body)
	}
	if len(entries) != 2 { // one router view + one replica view of the same id
		t.Fatalf("slowlog has %d entries, want 2: %+v", len(entries), entries)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Total > entries[i-1].Total {
			t.Fatal("slowlog not sorted worst-first")
		}
	}

	code, body = get(t, opts, "/trace?id="+id)
	if code != 200 {
		t.Fatalf("/trace status %d: %s", code, body)
	}
	var merged SlowEntry
	if err := json.Unmarshal([]byte(body), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.ID != id || !strings.Contains(merged.Tier, "router") || !strings.Contains(merged.Tier, "replica-0") {
		t.Fatalf("merged trace wrong: %+v", merged)
	}
	names := map[string]bool{}
	for _, sp := range merged.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"router/route", "replica-0/forward"} {
		if !names[want] {
			t.Fatalf("merged trace missing %s: %+v", want, merged.Spans)
		}
	}

	if code, _ := get(t, opts, "/trace"); code != 400 {
		t.Fatalf("missing id returned %d, want 400", code)
	}
	if code, _ := get(t, opts, "/trace?id=deadbeefdeadbeef"); code != 404 {
		t.Fatalf("unknown id returned %d, want 404", code)
	}
}

func TestPprofAndIndex(t *testing.T) {
	testutil.NoLeaks(t)
	opts := Options{} // everything optional: an empty process still serves
	if code, body := get(t, opts, "/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine: %d\n%s", code, body)
	}
	if code, body := get(t, opts, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %s", code, body)
	}
	if code, _ := get(t, opts, "/nope"); code != 404 {
		t.Fatal("unknown path not 404")
	}
	// Empty process: /metrics still yields build info, /slowlog [].
	if _, body := get(t, opts, "/metrics"); !strings.Contains(body, "djinn_build_info") {
		t.Fatal("empty /metrics missing build info")
	}
	if _, body := get(t, opts, "/slowlog"); strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty slowlog = %q", body)
	}
}

func TestFormatLe(t *testing.T) {
	for _, c := range []struct {
		d    time.Duration
		want string
	}{
		{50 * time.Microsecond, "0.00005"},
		{time.Millisecond, "0.001"},
		{time.Second, "1"},
		{5 * time.Second, "5"},
	} {
		if got := formatLe(c.d); got != c.want {
			t.Errorf("formatLe(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestModelAndSplitMetrics covers the export of the model-store
// lifecycle (djinn_model_*) and the router's canary splits
// (djinn_split_*).
func TestModelAndSplitMetrics(t *testing.T) {
	testutil.NoLeaks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny@v1.djw")
	if err := modelstore.WriteFile(path, "tiny", 1, testNet(1)); err != nil {
		t.Fatal(err)
	}
	reg := modelstore.NewRegistry(modelstore.Config{BudgetBytes: 1 << 20})
	srv := service.NewServer()
	srv.SetLogger(silence)
	srv.AttachModelStore(reg, service.AppConfig{BatchInstances: 1, Workers: 1})
	if _, err := reg.Register(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		if err := reg.Close(); err != nil {
			t.Error(err)
		}
	})
	rt := router.New(router.Config{})
	t.Cleanup(rt.Close)
	if err := rt.AddBackend("replica-0", srv); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetSplit("tiny", router.SplitTarget{Target: "tiny@v1", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 2; i++ {
		if _, err := rt.Infer("tiny", in); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{
		Replicas: []Replica{{Name: "replica-0", Server: srv}},
		Router:   rt,
	}
	_, body := get(t, opts, "/metrics")
	for _, want := range []string{
		`djinn_model_registered{replica="replica-0"} 1`,
		`djinn_model_resident{replica="replica-0"} 1`,
		`djinn_model_budget_bytes{replica="replica-0"} 1.048576e+06`,
		`djinn_model_events_total{replica="replica-0",event="loads"} 1`,
		`djinn_model_events_total{replica="replica-0",event="faults"} 1`,
		`djinn_model_events_total{replica="replica-0",event="evictions"} 0`,
		`djinn_split_weight{app="tiny",target="tiny@v1"} 3`,
		`djinn_split_routed_total{app="tiny",target="tiny@v1"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// Resident bytes match the on-disk file exactly (the mapping is the
	// file).
	st, _ := srv.ModelStats()
	if !strings.Contains(body, fmt.Sprintf(`djinn_model_resident_bytes{replica="replica-0"} %g`, float64(st.ResidentBytes))) {
		t.Errorf("/metrics missing resident_bytes %d:\n%s", st.ResidentBytes, body)
	}
}

// TestControlPlaneMetrics: a controller with an installed shard map and
// autoscaler state exports the djinn_placement_* and djinn_autoscale_*
// families.
func TestControlPlaneMetrics(t *testing.T) {
	testutil.NoLeaks(t)
	rt := router.New(router.Config{})
	t.Cleanup(rt.Close)
	ctl := controlplane.NewController(controlplane.Config{
		Router: rt,
		Mapper: controlplane.NewMapper(controlplane.MapperConfig{
			Policy: controlplane.LeastLoaded{}, DefaultCount: 2,
		}),
		Autoscaler: controlplane.NewAutoscaler(controlplane.AutoscaleConfig{Min: 1, Max: 3}),
		Apps:       []string{"tiny"},
		Logf:       silence,
	})
	for i := 0; i < 3; i++ {
		srv := service.NewServer()
		srv.SetLogger(silence)
		t.Cleanup(srv.Close)
		id := fmt.Sprintf("cp-%d", i)
		if err := rt.AddBackend(id, srv); err != nil {
			t.Fatal(err)
		}
		ctl.Join(controlplane.NewServerMember(id, srv,
			map[string]*nn.Net{"tiny": testNet(1)},
			service.AppConfig{BatchInstances: 1, Workers: 1}))
	}
	if res := ctl.Reconcile(); res.Moves == 0 {
		t.Fatal("reconcile placed nothing")
	}
	ctl.Leave("cp-2")
	ctl.Control("scale tiny 2")
	defer ctl.WaitDrains()

	code, body := get(t, Options{ControlPlane: ctl}, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`djinn_placement_members{state="live"} 2`,
		`djinn_placement_members{state="dead"} 1`,
		`djinn_placement_events_total{event="rebalances"}`,
		`djinn_placement_events_total{event="moves"}`,
		`djinn_placement_events_total{event="activate_errors"} 0`,
		`djinn_placement_last_rebalance_seconds`,
		`djinn_placement_weight{app="tiny",replica="cp-0"} 100`,
		`djinn_autoscale_count{app="tiny"} 2`,
		`djinn_autoscale_events_total{app="tiny",direction="up"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s\n%s", want, body)
		}
	}
}
