package admin

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"djinn/internal/alerts"
	"djinn/internal/events"
	"djinn/internal/timeseries"
)

// obsFixture extends the admin fixture with the observability plane: a
// journal with a few entries, a collector sampling the fixture's
// replica, and an alert engine over the collector.
func obsFixture(t *testing.T) (Options, string) {
	t.Helper()
	opts, id := adminFixture(t)

	j := events.New(64)
	j.Appendf(events.KindMarkDown, "router", "b marked down for 1s: test")
	j.Appendf(events.KindRecover, "router", "b recovered: probe answered fast")
	opts.Journal = j

	c := timeseries.NewCollector(timeseries.Config{
		Interval: 100 * time.Millisecond,
		Slots:    32,
		Targets:  []timeseries.Target{{Replica: "replica-0", Server: opts.Replicas[0].Server}},
		SLO:      map[string]time.Duration{"tiny": time.Second},
	})
	now := time.Now()
	c.Sample(now.Add(-200 * time.Millisecond)) // prime baselines
	// Traffic after the baseline lands in the sampled deltas.
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 2; i++ {
		if _, err := opts.Router.Infer("tiny", in); err != nil {
			t.Fatal(err)
		}
	}
	c.Sample(now.Add(-100 * time.Millisecond))
	for i := 0; i < 2; i++ {
		if _, err := opts.Router.Infer("tiny", in); err != nil {
			t.Fatal(err)
		}
	}
	c.Sample(now)
	opts.Collector = c

	e := alerts.New(c, j, alerts.Rule{App: "tiny", Objective: 0.95, FastWindow: 200 * time.Millisecond, SlowWindow: 400 * time.Millisecond})
	e.Eval(now)
	opts.Alerts = e
	return opts, id
}

func TestEventsEndpoint(t *testing.T) {
	opts, _ := obsFixture(t)
	code, body := get(t, opts, "/events")
	if code != 200 {
		t.Fatalf("/events status %d: %s", code, body)
	}
	var resp struct {
		LastSeq uint64         `json:"last_seq"`
		Events  []events.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/events not JSON: %v\n%s", err, body)
	}
	if resp.LastSeq != 2 || len(resp.Events) != 2 {
		t.Fatalf("events = %+v, want 2 entries", resp)
	}

	// Cursor: everything after seq 1.
	_, body = get(t, opts, "/events?since=1")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Seq != 2 {
		t.Fatalf("since=1 → %+v, want only seq 2", resp.Events)
	}

	// Kind filter.
	_, body = get(t, opts, "/events?kind=markdown")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Kind != events.KindMarkDown {
		t.Fatalf("kind=markdown → %+v", resp.Events)
	}

	if code, _ := get(t, opts, "/events?since=zzz"); code != 400 {
		t.Errorf("bad since status = %d, want 400", code)
	}
	opts.Journal = nil
	if code, _ := get(t, opts, "/events"); code != 404 {
		t.Errorf("no-journal status = %d, want 404", code)
	}
}

func TestDashEndpoint(t *testing.T) {
	opts, _ := obsFixture(t)
	code, body := get(t, opts, "/dash")
	if code != 200 {
		t.Fatalf("/dash status %d: %s", code, body)
	}
	var resp DashResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/dash not JSON: %v\n%s", err, body)
	}
	if len(resp.Apps) != 1 || resp.Apps[0].App != "tiny" {
		t.Fatalf("dash apps = %+v", resp.Apps)
	}
	if resp.Apps[0].QPS <= 0 {
		t.Errorf("dash QPS = %v, want > 0 (two fixture queries in window)", resp.Apps[0].QPS)
	}
	if len(resp.Replicas) != 1 || resp.Replicas[0].Replica != "replica-0" {
		t.Fatalf("dash replicas = %+v", resp.Replicas)
	}
	if len(resp.Alerts) != 1 || resp.Alerts[0].Rule.App != "tiny" {
		t.Fatalf("dash alerts = %+v", resp.Alerts)
	}
	if len(resp.Events) != 2 {
		t.Fatalf("dash events = %+v, want the journal tail", resp.Events)
	}

	opts.Collector = nil
	if code, _ := get(t, opts, "/dash"); code != 404 {
		t.Errorf("no-collector status = %d, want 404", code)
	}
}

func TestObservabilityMetricsFamilies(t *testing.T) {
	opts, id := obsFixture(t)
	_, body := get(t, opts, "/metrics")
	for _, want := range []string{
		"djinn_events_total 2",
		`djinn_fleet_qps{app="tiny"}`,
		`djinn_fleet_latency_quantile_seconds{app="tiny",quantile="0.99"}`,
		`djinn_fleet_error_rate{app="tiny"} 0`,
		"djinn_collector_ticks_total 3",
		`djinn_alert_firing{app="tiny"} 0`,
		`djinn_alert_burn{app="tiny",window="fast"}`,
		`djinn_alert_fires_total{app="tiny"} 0`,
		"djinn_runtime_goroutines",
		"djinn_runtime_heap_objects_bytes",
		"djinn_runtime_gc_pause_seconds_count",
		"djinn_runtime_sched_latency_seconds_bucket",
		`djinn_request_latency_seconds_count{replica="replica-0",app="tiny"} 6`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// The traced fixture query must surface as an exemplar on the
	// request-latency histogram, linking the bucket to /trace?id=.
	if !strings.Contains(body, `# {trace_id="`+id+`"}`) {
		t.Errorf("/metrics has no exemplar for trace %s", id)
	}
	if t.Failed() {
		t.Log(body)
	}
}

func TestRuntimeHistogramCompaction(t *testing.T) {
	_, body := get(t, Options{}, "/metrics")
	for _, name := range []string{"djinn_runtime_gc_pause_seconds", "djinn_runtime_sched_latency_seconds"} {
		n := strings.Count(body, name+"_bucket{")
		if n > 17 { // 16 compacted + possibly a closing +Inf
			t.Errorf("%s exported %d buckets, want ≤ 17", name, n)
		}
		if !strings.Contains(body, name+"_count") {
			t.Errorf("%s missing _count", name)
		}
	}
}
