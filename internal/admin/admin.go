// Package admin is the scrapeable export plane of a DjiNN process: a
// small HTTP listener, separate from the query socket, that exposes the
// service's internal instrumentation. The WSC operator story from the
// paper (Section 6 sizes fleets from measured throughput and latency)
// needs those measurements to leave the process somehow; this package
// serves them in the three forms operations tooling already speaks —
// Prometheus text on /metrics, net/http/pprof under /debug/pprof/, and
// a JSON slow-query log of the worst recent traces on /slowlog.
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"djinn/internal/alerts"
	"djinn/internal/controlplane"
	"djinn/internal/events"
	"djinn/internal/gateway"
	"djinn/internal/metrics"
	"djinn/internal/modelstore"
	"djinn/internal/router"
	"djinn/internal/sched"
	"djinn/internal/service"
	"djinn/internal/timeseries"
	"djinn/internal/trace"
)

// Replica pairs a server with the name it reports under (a process
// hosting several replicas labels each one, e.g. "replica-0").
type Replica struct {
	Name   string
	Server *service.Server
}

// Options selects what the admin plane exports. Every field is
// optional: a router-only process omits Replicas, a single-server
// process omits Router.
type Options struct {
	// Replicas are the in-process servers to export.
	Replicas []Replica
	// Router, when set, contributes per-backend routing counters.
	Router *router.Router
	// ControlPlane, when set, contributes the djinn_placement_* and
	// djinn_autoscale_* families: shard-map weights, membership and
	// rebalance counters, and per-app autoscaler state.
	ControlPlane *controlplane.Controller
	// Stores are the trace stores the slow-query log and /trace draw
	// from (typically one per tier in this process).
	Stores []*trace.Store
	// SlowLog bounds the /slowlog response to the K worst traces.
	// Zero means 10.
	SlowLog int
	// Journal, when set, serves the structured fleet event log on
	// /events.
	Journal *events.Journal
	// Collector, when set, serves the fleet time-series rollups on
	// /dash and contributes djinn_fleet_* gauges to /metrics.
	Collector *timeseries.Collector
	// Alerts, when set, contributes alert states to /dash and the
	// djinn_alert_* family to /metrics.
	Alerts *alerts.Engine
	// Gateway, when set, contributes the djinn_gateway_* and
	// djinn_pipeline_* families: HTTP status counts, response-cache
	// and rate-limit counters, and pipeline stage/latency stats.
	Gateway *gateway.Gateway
	// DashWindow is the trailing window /dash aggregates over (default
	// 30s).
	DashWindow time.Duration
	// Runtime disables the djinn_runtime_* Go runtime family on
	// /metrics when false is wanted; default (zero value) exports it.
	NoRuntimeMetrics bool
}

// NewHandler builds the admin HTTP handler:
//
//	/metrics        Prometheus text exposition
//	/slowlog        JSON: the K slowest retained traces, worst first
//	/trace?id=<id>  JSON: one trace merged across this process's tiers
//	/events         JSON: the structured fleet event journal
//	/dash           JSON: fleet rollups + alert states (tonic top reads it)
//	/debug/pprof/   the standard Go profiler endpoints
func NewHandler(opts Options) http.Handler {
	if opts.SlowLog <= 0 {
		opts.SlowLog = 10
	}
	if opts.DashWindow <= 0 {
		opts.DashWindow = 30 * time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, opts)
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(slowlog(opts.Stores, opts.SlowLog))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if !trace.ValidID(id) {
			http.Error(w, "missing or invalid ?id=", http.StatusBadRequest)
			return
		}
		tr, ok := trace.Merge(id, opts.Stores...)
		if !ok {
			http.Error(w, "trace not retained", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(traceEntry(tr))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, r, opts.Journal)
	})
	mux.HandleFunc("/dash", func(w http.ResponseWriter, r *http.Request) {
		serveDash(w, r, opts)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "djinn admin: /metrics /slowlog /trace?id= /events /dash /debug/pprof/\n")
	})
	return mux
}

// SlowEntry is one slow-query-log record: a retained trace plus its
// total wall-clock extent, ready for jq-style consumption.
type SlowEntry struct {
	ID    string        `json:"id"`
	Tier  string        `json:"tier"`
	Total time.Duration `json:"total_ns"`
	Spans []trace.Span  `json:"spans"`
}

func traceEntry(tr trace.Trace) SlowEntry {
	return SlowEntry{ID: tr.ID, Tier: tr.Tier, Total: tr.Duration(), Spans: tr.Spans}
}

// slowlog collects the k worst traces across every store, slowest
// first. The same ID may appear once per tier; the per-tier views are
// kept distinct (merge on demand via /trace?id=).
func slowlog(stores []*trace.Store, k int) []SlowEntry {
	var all []SlowEntry
	for _, st := range stores {
		if st == nil {
			continue
		}
		for _, tr := range st.Slowest(k) {
			all = append(all, traceEntry(tr))
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	if len(all) > k {
		all = all[:k]
	}
	if all == nil {
		all = []SlowEntry{}
	}
	return all
}

// writeMetrics renders the Prometheus text exposition format by hand —
// the format is a stable line protocol and hand-rolling it keeps the
// repo dependency-free.
func writeMetrics(w io.Writer, opts Options) {
	writeBuildInfo(w)

	if len(opts.Replicas) > 0 {
		fmt.Fprintln(w, "# HELP djinn_app_events_total Per-application lifecycle counters (queries, instances, batches, errors, shed_admission, shed_expired, expired).")
		fmt.Fprintln(w, "# TYPE djinn_app_events_total counter")
		for _, rep := range opts.Replicas {
			if rep.Server == nil {
				continue
			}
			for _, app := range sortedApps(rep.Server) {
				st, ok := rep.Server.StatsFor(app)
				if !ok {
					continue
				}
				for _, c := range []struct {
					event string
					v     int64
				}{
					{"queries", st.Queries}, {"instances", st.Instances},
					{"batches", st.Batches}, {"errors", st.Errors},
					{"shed_admission", st.ShedAdmission}, {"shed_expired", st.ShedExpired},
					{"expired", st.Expired},
				} {
					fmt.Fprintf(w, "djinn_app_events_total{replica=%q,app=%q,event=%q} %d\n",
						rep.Name, app, c.event, c.v)
				}
			}
		}

		fmt.Fprintln(w, "# HELP djinn_stage_latency_seconds Per-stage request lifecycle latency.")
		fmt.Fprintln(w, "# TYPE djinn_stage_latency_seconds histogram")
		for _, rep := range opts.Replicas {
			if rep.Server == nil {
				continue
			}
			for _, app := range sortedApps(rep.Server) {
				for _, stage := range metrics.Stages {
					h, ok := rep.Server.StageHistogram(app, stage)
					if !ok || h.Count == 0 {
						continue
					}
					writeHistogram(w, "djinn_stage_latency_seconds",
						fmt.Sprintf("replica=%q,app=%q,stage=%q", rep.Name, app, stage), h)
				}
			}
		}

		fmt.Fprintln(w, "# HELP djinn_stage_latency_quantile_seconds Reservoir-sampled stage latency quantiles.")
		fmt.Fprintln(w, "# TYPE djinn_stage_latency_quantile_seconds gauge")
		for _, rep := range opts.Replicas {
			if rep.Server == nil {
				continue
			}
			for _, app := range sortedApps(rep.Server) {
				sum, ok := rep.Server.LatencyFor(app)
				if !ok {
					continue
				}
				for _, st := range []struct {
					stage metrics.Stage
					s     metrics.Summary
				}{
					{metrics.StageQueueWait, sum.QueueWait},
					{metrics.StageBatchAssembly, sum.BatchAssembly},
					{metrics.StageForward, sum.Forward},
					{metrics.StageRespond, sum.Respond},
				} {
					if st.s.Count == 0 {
						continue
					}
					base := fmt.Sprintf("replica=%q,app=%q,stage=%q", rep.Name, app, st.stage)
					for _, q := range []struct {
						q string
						d time.Duration
					}{{"0.5", st.s.P50}, {"0.95", st.s.P95}, {"0.99", st.s.P99}} {
						fmt.Fprintf(w, "djinn_stage_latency_quantile_seconds{%s,quantile=%q} %g\n",
							base, q.q, q.d.Seconds())
					}
				}
			}
		}

		writeRequestLatency(w, opts)
		writeSchedMetrics(w, opts)
		writeModelMetrics(w, opts)

		fmt.Fprintln(w, "# HELP djinn_recent_qps Completed queries per second over the last 10s window.")
		fmt.Fprintln(w, "# TYPE djinn_recent_qps gauge")
		for _, rep := range opts.Replicas {
			if rep.Server == nil {
				continue
			}
			fmt.Fprintf(w, "djinn_recent_qps{replica=%q} %g\n",
				rep.Name, rep.Server.Throughput().RecentRate(10*time.Second))
		}
	}

	if opts.Router != nil {
		fmt.Fprintln(w, "# HELP djinn_backend_events_total Per-backend routing counters (sent, ok, failures, backpressure, slow, markdowns, probes).")
		fmt.Fprintln(w, "# TYPE djinn_backend_events_total counter")
		snaps := opts.Router.Stats()
		for _, bs := range snaps {
			for _, c := range []struct {
				event string
				v     int64
			}{
				{"sent", bs.Stats.Sent}, {"ok", bs.Stats.OK},
				{"failures", bs.Stats.Failures}, {"backpressure", bs.Stats.Backpressure},
				{"slow", bs.Stats.Slow},
				{"markdowns", bs.Stats.MarkDowns}, {"probes", bs.Stats.Probes},
			} {
				fmt.Fprintf(w, "djinn_backend_events_total{backend=%q,event=%q} %d\n",
					bs.ID, c.event, c.v)
			}
		}
		fmt.Fprintln(w, "# HELP djinn_backend_healthy Whether the router considers the backend routable (1) or marked down (0).")
		fmt.Fprintln(w, "# TYPE djinn_backend_healthy gauge")
		for _, bs := range snaps {
			v := 0
			if bs.Healthy {
				v = 1
			}
			fmt.Fprintf(w, "djinn_backend_healthy{backend=%q} %d\n", bs.ID, v)
		}
		fmt.Fprintln(w, "# HELP djinn_backend_outstanding Queries in flight to the backend.")
		fmt.Fprintln(w, "# TYPE djinn_backend_outstanding gauge")
		for _, bs := range snaps {
			fmt.Fprintf(w, "djinn_backend_outstanding{backend=%q} %d\n", bs.ID, bs.Outstanding)
		}
		fmt.Fprintln(w, "# HELP djinn_backend_pressure Decaying overload penalty load-based policies add to outstanding.")
		fmt.Fprintln(w, "# TYPE djinn_backend_pressure gauge")
		for _, bs := range snaps {
			fmt.Fprintf(w, "djinn_backend_pressure{backend=%q} %d\n", bs.ID, bs.Pressure)
		}
		writeSplitMetrics(w, opts.Router)
	}

	if opts.ControlPlane != nil {
		writeControlPlaneMetrics(w, opts.ControlPlane)
	}

	if len(opts.Stores) > 0 {
		fmt.Fprintln(w, "# HELP djinn_traces_retained Traces currently held in each tier's bounded store.")
		fmt.Fprintln(w, "# TYPE djinn_traces_retained gauge")
		for _, st := range opts.Stores {
			if st == nil {
				continue
			}
			fmt.Fprintf(w, "djinn_traces_retained{tier=%q} %d\n", st.Tier(), st.Len())
		}
	}

	if opts.Journal != nil {
		fmt.Fprintln(w, "# HELP djinn_events_total Events appended to the fleet journal (monotone; survives ring overwrite).")
		fmt.Fprintln(w, "# TYPE djinn_events_total counter")
		fmt.Fprintf(w, "djinn_events_total %d\n", opts.Journal.LastSeq())
	}
	if opts.Collector != nil {
		writeFleetMetrics(w, opts.Collector, opts.DashWindow)
	}
	if opts.Alerts != nil {
		writeAlertMetrics(w, opts.Alerts)
	}
	if opts.Gateway != nil {
		writeGatewayMetrics(w, opts.Gateway)
	}
	if !opts.NoRuntimeMetrics {
		writeRuntimeMetrics(w)
	}
}

// writeSchedMetrics renders per-app scheduler gauges for every replica
// app registered with an SLO: the adaptive batch size and flush
// window, the admission rate, and the live queue-delay estimate the
// admission controller is steering on.
func writeSchedMetrics(w io.Writer, opts Options) {
	type entry struct {
		replica, app string
		info         sched.Info
	}
	var entries []entry
	for _, rep := range opts.Replicas {
		if rep.Server == nil {
			continue
		}
		for _, app := range sortedApps(rep.Server) {
			if info, ok := rep.Server.SchedFor(app); ok {
				entries = append(entries, entry{rep.Name, app, info})
			}
		}
	}
	if len(entries) == 0 {
		return
	}
	for _, g := range []struct {
		name, help string
		v          func(sched.Info) float64
	}{
		{"djinn_sched_batch_size", "Current adaptive batch size in instances.",
			func(i sched.Info) float64 { return float64(i.Batch) }},
		{"djinn_sched_window_seconds", "Current adaptive flush window.",
			func(i sched.Info) float64 { return i.Window.Seconds() }},
		{"djinn_sched_slo_seconds", "Declared p99 latency SLO.",
			func(i sched.Info) float64 { return i.SLO.Seconds() }},
		{"djinn_sched_admission_rate", "Fraction of admission decisions that admitted (lifetime).",
			func(i sched.Info) float64 { return i.AdmissionRate() }},
		{"djinn_sched_queued_instances", "Instances admitted but not yet executed.",
			func(i sched.Info) float64 { return float64(i.Queued) }},
		{"djinn_sched_est_wait_seconds", "Queue-delay estimate a new 1-instance query would see.",
			func(i sched.Info) float64 { return i.EstWait.Seconds() }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, e := range entries {
			fmt.Fprintf(w, "%s{replica=%q,app=%q,priority=%q} %g\n",
				g.name, e.replica, e.app, e.info.Priority, g.v(e.info))
		}
	}
}

// writeModelMetrics renders the djinn_model_* family for every replica
// with a model store attached: residency gauges (count, mapped bytes,
// peak, budget) plus lifetime lifecycle counters (loads, first-query
// faults, evictions, load errors).
func writeModelMetrics(w io.Writer, opts Options) {
	type entry struct {
		replica string
		st      modelstore.Stats
	}
	var entries []entry
	for _, rep := range opts.Replicas {
		if rep.Server == nil {
			continue
		}
		if st, ok := rep.Server.ModelStats(); ok {
			entries = append(entries, entry{rep.Name, st})
		}
	}
	if len(entries) == 0 {
		return
	}
	for _, g := range []struct {
		name, help string
		v          func(modelstore.Stats) float64
	}{
		{"djinn_model_registered", "Model versions registered with the store.",
			func(s modelstore.Stats) float64 { return float64(s.Registered) }},
		{"djinn_model_resident", "Model versions currently loaded.",
			func(s modelstore.Stats) float64 { return float64(s.Resident) }},
		{"djinn_model_resident_bytes", "Bytes of weight files currently mapped.",
			func(s modelstore.Stats) float64 { return float64(s.ResidentBytes) }},
		{"djinn_model_peak_bytes", "High-water mark of mapped bytes.",
			func(s modelstore.Stats) float64 { return float64(s.PeakBytes) }},
		{"djinn_model_budget_bytes", "Configured residency budget (0 = unbounded).",
			func(s modelstore.Stats) float64 { return float64(s.BudgetBytes) }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, e := range entries {
			fmt.Fprintf(w, "%s{replica=%q} %g\n", g.name, e.replica, g.v(e.st))
		}
	}
	fmt.Fprintln(w, "# HELP djinn_model_events_total Model lifecycle counters (loads, faults, evictions, load_errors).")
	fmt.Fprintln(w, "# TYPE djinn_model_events_total counter")
	for _, e := range entries {
		for _, c := range []struct {
			event string
			v     int64
		}{
			{"loads", e.st.Loads}, {"faults", e.st.Faults},
			{"evictions", e.st.Evictions}, {"load_errors", e.st.LoadErrors},
		} {
			fmt.Fprintf(w, "djinn_model_events_total{replica=%q,event=%q} %d\n",
				e.replica, c.event, c.v)
		}
	}
}

// writeControlPlaneMetrics renders the cluster control plane: the
// shard map as per-(app, replica) weight gauges, membership and
// rebalance counters, and the autoscaler's per-app replica counts and
// lifetime scale events.
func writeControlPlaneMetrics(w io.Writer, ctl *controlplane.Controller) {
	m := ctl.Snapshot()
	fmt.Fprintln(w, "# HELP djinn_placement_members Members known to the control plane.")
	fmt.Fprintln(w, "# TYPE djinn_placement_members gauge")
	fmt.Fprintf(w, "djinn_placement_members{state=\"live\"} %d\n", m.Members-m.Dead)
	fmt.Fprintf(w, "djinn_placement_members{state=\"dead\"} %d\n", m.Dead)
	fmt.Fprintln(w, "# HELP djinn_placement_events_total Control-plane lifecycle counters (rebalances, moves, activate_errors).")
	fmt.Fprintln(w, "# TYPE djinn_placement_events_total counter")
	for _, c := range []struct {
		event string
		v     int64
	}{
		{"rebalances", m.Rebalances}, {"moves", m.Moves},
		{"activate_errors", m.ActivateErrors},
	} {
		fmt.Fprintf(w, "djinn_placement_events_total{event=%q} %d\n", c.event, c.v)
	}
	fmt.Fprintln(w, "# HELP djinn_placement_last_rebalance_seconds Duration of the most recent reconcile pass.")
	fmt.Fprintln(w, "# TYPE djinn_placement_last_rebalance_seconds gauge")
	fmt.Fprintf(w, "djinn_placement_last_rebalance_seconds %g\n", m.LastRebalance.Seconds())
	if len(m.Placements) > 0 {
		apps := make([]string, 0, len(m.Placements))
		for app := range m.Placements {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		fmt.Fprintln(w, "# HELP djinn_placement_weight Routing weight of one (app, replica) assignment in the shard map.")
		fmt.Fprintln(w, "# TYPE djinn_placement_weight gauge")
		for _, app := range apps {
			for _, p := range m.Placements[app] {
				fmt.Fprintf(w, "djinn_placement_weight{app=%q,replica=%q} %d\n", app, p.Replica, p.Weight)
			}
		}
	}
	if len(m.Scales) > 0 {
		fmt.Fprintln(w, "# HELP djinn_autoscale_count Current autoscaler replica count per app.")
		fmt.Fprintln(w, "# TYPE djinn_autoscale_count gauge")
		for _, s := range m.Scales {
			fmt.Fprintf(w, "djinn_autoscale_count{app=%q} %d\n", s.App, s.Count)
		}
		fmt.Fprintln(w, "# HELP djinn_autoscale_events_total Autoscaler decisions per app and direction.")
		fmt.Fprintln(w, "# TYPE djinn_autoscale_events_total counter")
		for _, s := range m.Scales {
			fmt.Fprintf(w, "djinn_autoscale_events_total{app=%q,direction=\"up\"} %d\n", s.App, s.ScaleUps)
			fmt.Fprintf(w, "djinn_autoscale_events_total{app=%q,direction=\"down\"} %d\n", s.App, s.ScaleDowns)
		}
	}
}

// writeSplitMetrics renders the router's live traffic splits: the
// configured weight and the routed-query counter of every arm, so an
// operator can verify a canary is actually receiving its fraction.
func writeSplitMetrics(w io.Writer, rt *router.Router) {
	splits := rt.Splits()
	if len(splits) == 0 {
		return
	}
	apps := rt.SplitApps()
	fmt.Fprintln(w, "# HELP djinn_split_weight Configured weight of one traffic-split arm.")
	fmt.Fprintln(w, "# TYPE djinn_split_weight gauge")
	for _, app := range apps {
		for _, st := range splits[app] {
			fmt.Fprintf(w, "djinn_split_weight{app=%q,target=%q} %d\n", app, st.Target, st.Weight)
		}
	}
	fmt.Fprintln(w, "# HELP djinn_split_routed_total Queries routed to one traffic-split arm.")
	fmt.Fprintln(w, "# TYPE djinn_split_routed_total counter")
	for _, app := range apps {
		for _, st := range splits[app] {
			fmt.Fprintf(w, "djinn_split_routed_total{app=%q,target=%q} %d\n", app, st.Target, st.Routed)
		}
	}
}

// writeHistogram emits one Prometheus histogram series. The snapshot's
// per-bucket counts become cumulative le-labelled buckets; durations
// become seconds. A bucket that retained a traced sample carries an
// OpenMetrics-style exemplar (`# {trace_id="..."} <seconds>`) pointing
// at the trace /slowlog and /trace?id= can expand.
func writeHistogram(w io.Writer, name, labels string, h metrics.HistogramSnapshot) {
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d%s\n", name, labels, formatLe(bound), cum, exemplarSuffix(h, i))
	}
	cum += h.Counts[len(h.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d%s\n", name, labels, cum, exemplarSuffix(h, len(h.Counts)-1))
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum.Seconds())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
}

func exemplarSuffix(h metrics.HistogramSnapshot, i int) string {
	if i >= len(h.Exemplars) || h.Exemplars[i].TraceID == "" {
		return ""
	}
	ex := h.Exemplars[i]
	return fmt.Sprintf(" # {trace_id=%q} %g", ex.TraceID, ex.Value.Seconds())
}

// formatLe renders a bucket bound in seconds without exponent noise
// ("0.0005", not "5e-04") so scrapes diff cleanly.
func formatLe(d time.Duration) string {
	s := fmt.Sprintf("%.6f", d.Seconds())
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".") // whole-second bounds: "5." → "5"
}

func sortedApps(s *service.Server) []string {
	apps := s.Apps()
	sort.Strings(apps)
	return apps
}

func writeBuildInfo(w io.Writer) {
	fmt.Fprintln(w, "# HELP djinn_build_info Build metadata; the value is always 1.")
	fmt.Fprintln(w, "# TYPE djinn_build_info gauge")
	goVersion, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				revision = kv.Value
			}
		}
	}
	fmt.Fprintf(w, "djinn_build_info{goversion=%q,revision=%q} 1\n", goVersion, revision)
}
