package admin

import (
	"fmt"
	"io"
	"sort"

	"djinn/internal/gateway"
)

// writeGatewayMetrics renders the djinn_gateway_* and djinn_pipeline_*
// families from one gateway's counters: HTTP status counts, the
// content-addressed response cache, per-tenant rate limiting, and the
// pipeline runner's per-stage dispatch counts and end-to-end latency.
func writeGatewayMetrics(w io.Writer, g *gateway.Gateway) {
	st := g.Stats()

	fmt.Fprintln(w, "# HELP djinn_gateway_requests_total HTTP requests served, by status code.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_requests_total counter")
	codes := make([]int, 0, len(st.ByStatus))
	for c := range st.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "djinn_gateway_requests_total{code=\"%d\"} %d\n", c, st.ByStatus[c])
	}

	fmt.Fprintln(w, "# HELP djinn_gateway_endpoint_total Requests by endpoint.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_endpoint_total counter")
	fmt.Fprintf(w, "djinn_gateway_endpoint_total{endpoint=%q} %d\n", "infer", st.Infer)
	fmt.Fprintf(w, "djinn_gateway_endpoint_total{endpoint=%q} %d\n", "pipeline", st.Pipelines)

	fmt.Fprintln(w, "# HELP djinn_gateway_parse_errors_total Request bodies rejected as malformed.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_parse_errors_total counter")
	fmt.Fprintf(w, "djinn_gateway_parse_errors_total %d\n", st.ParseErrors)

	c := st.Cache
	fmt.Fprintln(w, "# HELP djinn_gateway_cache_events_total Response-cache outcomes (hit, miss, fill, fill_error, dedup, eviction, expired).")
	fmt.Fprintln(w, "# TYPE djinn_gateway_cache_events_total counter")
	for _, kv := range []struct {
		k string
		v int64
	}{
		{"hit", c.Hits}, {"miss", c.Misses}, {"fill", c.Fills},
		{"fill_error", c.FillErrs}, {"dedup", c.Dedup},
		{"eviction", c.Evictions}, {"expired", c.Expired},
	} {
		fmt.Fprintf(w, "djinn_gateway_cache_events_total{event=%q} %d\n", kv.k, kv.v)
	}
	fmt.Fprintln(w, "# HELP djinn_gateway_cache_bytes Bytes of cached response bodies resident.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_cache_bytes gauge")
	fmt.Fprintf(w, "djinn_gateway_cache_bytes %d\n", c.Bytes)
	fmt.Fprintln(w, "# HELP djinn_gateway_cache_entries Cached responses resident.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_cache_entries gauge")
	fmt.Fprintf(w, "djinn_gateway_cache_entries %d\n", c.Entries)

	l := st.Limit
	fmt.Fprintln(w, "# HELP djinn_gateway_ratelimit_total Admission decisions at the tenant token buckets.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_ratelimit_total counter")
	fmt.Fprintf(w, "djinn_gateway_ratelimit_total{decision=%q} %d\n", "allowed", l.Allowed)
	fmt.Fprintf(w, "djinn_gateway_ratelimit_total{decision=%q} %d\n", "denied", l.Denied)
	fmt.Fprintln(w, "# HELP djinn_gateway_ratelimit_tenants Tenant buckets currently tracked.")
	fmt.Fprintln(w, "# TYPE djinn_gateway_ratelimit_tenants gauge")
	fmt.Fprintf(w, "djinn_gateway_ratelimit_tenants %d\n", l.Tenants)

	if st.E2E.Count > 0 {
		fmt.Fprintln(w, "# HELP djinn_gateway_latency_seconds Gateway end-to-end serving latency (successful requests).")
		fmt.Fprintln(w, "# TYPE djinn_gateway_latency_seconds histogram")
		writeHistogram(w, "djinn_gateway_latency_seconds", `tier="gateway"`, st.E2E)
	}

	p := st.Pipeline
	fmt.Fprintln(w, "# HELP djinn_pipeline_runs_total Pipeline executions.")
	fmt.Fprintln(w, "# TYPE djinn_pipeline_runs_total counter")
	fmt.Fprintf(w, "djinn_pipeline_runs_total %d\n", p.Runs)
	fmt.Fprintln(w, "# HELP djinn_pipeline_errors_total Pipeline executions that failed.")
	fmt.Fprintln(w, "# TYPE djinn_pipeline_errors_total counter")
	fmt.Fprintf(w, "djinn_pipeline_errors_total %d\n", p.Errors)
	if len(p.StageRuns) > 0 {
		fmt.Fprintln(w, "# HELP djinn_pipeline_stage_runs_total Stage dispatches by app.")
		fmt.Fprintln(w, "# TYPE djinn_pipeline_stage_runs_total counter")
		for _, app := range p.StageApps() {
			fmt.Fprintf(w, "djinn_pipeline_stage_runs_total{app=%q} %d\n", app, p.StageRuns[app])
		}
	}
	if len(p.StageErrs) > 0 {
		fmt.Fprintln(w, "# HELP djinn_pipeline_stage_errors_total Stage dispatches that failed, by app.")
		fmt.Fprintln(w, "# TYPE djinn_pipeline_stage_errors_total counter")
		apps := make([]string, 0, len(p.StageErrs))
		for a := range p.StageErrs {
			apps = append(apps, a)
		}
		sort.Strings(apps)
		for _, app := range apps {
			fmt.Fprintf(w, "djinn_pipeline_stage_errors_total{app=%q} %d\n", app, p.StageErrs[app])
		}
	}
	if p.E2E.Count > 0 {
		fmt.Fprintln(w, "# HELP djinn_pipeline_latency_seconds Pipeline end-to-end latency.")
		fmt.Fprintln(w, "# TYPE djinn_pipeline_latency_seconds histogram")
		writeHistogram(w, "djinn_pipeline_latency_seconds", `tier="pipeline"`, p.E2E)
	}
}
