package gpusim

import (
	"sort"

	"djinn/internal/sim"
	"djinn/internal/tensor"
)

// OpenLoopConfig describes an open-loop service experiment: queries
// arrive in a Poisson stream, the service aggregates them into batches
// (size threshold or window timeout, DjiNN's aggregator policy), and
// the batches execute on the simulated GPU server. Where the
// closed-loop saturation runs measure peak throughput (Figures 7-12),
// this measures the latency a service user sees at a given load.
type OpenLoopConfig struct {
	Server ServerConfig
	// ArrivalRate is the query arrival rate, per second.
	ArrivalRate float64
	// BatchQueries is the aggregation threshold in queries.
	BatchQueries int
	// BatchWindow is the aggregation timeout, seconds.
	BatchWindow float64
	// QueryKernels lowers one query's forward pass; a batch of n
	// queries runs kernels scaled from a batch-n forward pass supplied
	// by BatchKernels.
	BatchKernels func(queries int) []KernelWork
	// BytesPerQuery is the PCIe transfer size per query.
	BytesPerQuery float64
	Seed          uint64
}

// OpenLoopResult summarises the run.
type OpenLoopResult struct {
	Arrived   int
	Completed int
	QPS       float64
	MeanLat   float64
	P50, P95  float64
	P99       float64
	MeanBatch float64
}

// SimulateOpenLoop runs the open-loop experiment for the given
// simulated duration (after a 10% warmup) and reports query latency
// from arrival to completion — queueing in the aggregator included.
func SimulateOpenLoop(cfg OpenLoopConfig, duration float64) OpenLoopResult {
	if cfg.ArrivalRate <= 0 || cfg.BatchQueries <= 0 || cfg.BatchWindow <= 0 {
		panic("gpusim: open-loop config needs positive rate, batch and window")
	}
	eng := sim.New()
	var sched scheduler
	if cfg.Server.MPS {
		sched = newMPSSched(eng, cfg.Server.Device)
	} else {
		sched = newExclusiveSched(eng, cfg.Server.Device)
	}
	var pcie *sim.FIFO
	if cfg.Server.HostPCIeBW > 0 {
		pcie = sim.NewFIFO(eng)
	}
	rng := tensor.NewRNG(cfg.Seed + 1)
	warmup := duration * 0.1
	var (
		pendingArrivals []float64 // arrival times of queued queries
		windowEvent     *sim.Event
		latencies       []float64
		arrived         int
		completed       int
		batchQueries    int
		batches         int
		busyProcs       int
		batchQueue      [][]float64 // formed batches waiting for a worker
	)
	maxProcs := cfg.Server.ProcsPerGPU * cfg.Server.GPUs
	if maxProcs <= 0 {
		maxProcs = 1
	}

	// dispatch runs one batch on a service worker; DjiNN has a fixed
	// worker pool, so formed batches queue when all workers are busy.
	var dispatch func(arrivals []float64)
	dispatch = func(arrivals []float64) {
		busyProcs++
		ks := cfg.BatchKernels(len(arrivals))
		finish := func() {
			busyProcs--
			for _, at := range arrivals {
				if at >= warmup {
					latencies = append(latencies, eng.Now()-at)
					completed++
				}
			}
			batches++
			batchQueries += len(arrivals)
			if len(batchQueue) > 0 && busyProcs < maxProcs {
				next := batchQueue[0]
				batchQueue = batchQueue[1:]
				dispatch(next)
			}
		}
		var runKernel func(i int)
		runKernel = func(i int) {
			if i >= len(ks) {
				finish()
				return
			}
			eng.After(cfg.Server.Device.LaunchOverhead, func() {
				sched.Submit(0, ks[i], func() { runKernel(i + 1) })
			})
		}
		start := func() { runKernel(0) }
		if pcie != nil {
			bytes := cfg.BytesPerQuery * float64(len(arrivals))
			pcie.Acquire(bytes/cfg.Server.HostPCIeBW, func() {
				eng.After(cfg.Server.PCIeLatency, start)
			})
		} else {
			start()
		}
	}

	flush := func() {
		if len(pendingArrivals) == 0 {
			return
		}
		batch := pendingArrivals
		pendingArrivals = nil
		if windowEvent != nil {
			windowEvent.Cancel()
			windowEvent = nil
		}
		if busyProcs >= maxProcs {
			batchQueue = append(batchQueue, batch)
			return
		}
		dispatch(batch)
	}

	var arrive func()
	arrive = func() {
		arrived++
		pendingArrivals = append(pendingArrivals, eng.Now())
		if len(pendingArrivals) >= cfg.BatchQueries {
			flush()
		} else if windowEvent == nil {
			windowEvent = eng.After(cfg.BatchWindow, func() {
				windowEvent = nil
				flush()
			})
		}
		next := rng.ExpFloat64() / cfg.ArrivalRate
		if eng.Now()+next < duration {
			eng.After(next, arrive)
		}
	}
	eng.After(rng.ExpFloat64()/cfg.ArrivalRate, arrive)
	eng.Run()

	res := OpenLoopResult{Arrived: arrived, Completed: completed}
	measured := duration - warmup
	if measured > 0 {
		res.QPS = float64(completed) / measured
	}
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLat = sum / float64(len(latencies))
		sort.Float64s(latencies)
		q := func(p float64) float64 {
			i := int(p * float64(len(latencies)))
			if i >= len(latencies) {
				i = len(latencies) - 1
			}
			return latencies[i]
		}
		res.P50, res.P95, res.P99 = q(0.50), q(0.95), q(0.99)
	}
	if batches > 0 {
		res.MeanBatch = float64(batchQueries) / float64(batches)
	}
	return res
}
