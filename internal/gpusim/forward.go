package gpusim

import "djinn/internal/nn"

// Lower converts a network's kernel descriptors into timed GPU work:
// GEMM kernels through the two-candidate tile model, element-wise
// kernels through their thread count.
func (d DeviceSpec) Lower(ks []nn.Kernel) []KernelWork {
	out := make([]KernelWork, len(ks))
	for i, k := range ks {
		bytes := k.Bytes() * k.Replay()
		if k.GemmM > 0 && k.GemmN > 0 {
			out[i] = d.GemmWork(k.FLOPs, bytes, k.GemmM, k.GemmN, k.GemmCount)
		} else {
			out[i] = d.Work(k.FLOPs, bytes, k.Threads)
		}
	}
	return out
}

// ForwardTime returns the single-process forward-pass time for a kernel
// sequence: each kernel's solo execution plus the per-launch host gap.
// This is the analytic path used for the batching study (Figure 7);
// the multi-process experiments use the discrete-event scheduler.
func (d DeviceSpec) ForwardTime(ks []nn.Kernel) float64 {
	var t float64
	for _, w := range d.Lower(ks) {
		t += w.SoloTime + d.LaunchOverhead
	}
	return t
}

// Profile is the set of profiler counters Figure 6 reports, averaged
// over a forward pass's kernels weighted by each kernel's execution
// time (the paper's methodology: "metrics are collected at the kernel
// level ... weighted by each kernel's execution time").
type Profile struct {
	IPCRatio  float64 // achieved instruction throughput / peak
	Occupancy float64 // active warps / peak active warps
	L1Util    float64 // L1/shared-memory bandwidth utilisation
	L2Util    float64 // L2 bandwidth utilisation
	Time      float64 // total kernel time (no launch gaps)
}

// ProfileForward produces Figure 6's counters for a kernel sequence.
func (d DeviceSpec) ProfileForward(ks []nn.Kernel) Profile {
	var p Profile
	for _, w := range d.Lower(ks) {
		t := w.SoloTime
		// Instruction throughput achieved by this kernel relative to
		// device peak issue. Memory-bound kernels issue at the rate the
		// data arrives.
		ipc := (w.FLOPs / t) / d.PeakFLOPS
		if ipc > 1 {
			ipc = 1
		}
		// On-chip traffic: every FLOP sources operands through the
		// L1/shared hierarchy with heavy register-level reuse (~0.25
		// bytes/FLOP after blocking); DRAM traffic is a lower bound for
		// L2 traffic.
		l1 := (w.FLOPs * 0.25) / (t * d.L1BW)
		if l1 > 1 {
			l1 = 1
		}
		l2 := (w.Bytes * 1.5) / (t * d.L2BW)
		if l2 > 1 {
			l2 = 1
		}
		p.IPCRatio += ipc * t
		p.Occupancy += w.DispOcc * t
		p.L1Util += l1 * t
		p.L2Util += l2 * t
		p.Time += t
	}
	if p.Time > 0 {
		p.IPCRatio /= p.Time
		p.Occupancy /= p.Time
		p.L1Util /= p.Time
		p.L2Util /= p.Time
	}
	return p
}
