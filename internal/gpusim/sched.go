package gpusim

import (
	"math"

	"djinn/internal/sim"
)

// A scheduler arbitrates one GPU among the kernels submitted by
// multiple service processes. Two implementations mirror the paper's
// Section 5.2: without MPS, processes time-share the GPU and every
// process switch pays a context-switch penalty; with MPS, kernels from
// different processes execute concurrently from a shared resource pool.
type scheduler interface {
	// Submit enqueues one kernel from process proc; done runs at the
	// simulated time the kernel completes.
	Submit(proc int, w KernelWork, done func())
	// BusySeconds returns accumulated busy time for utilisation stats.
	BusySeconds() float64
}

// exclusiveSched is the non-MPS GPU: a FIFO of kernels executed one at
// a time, with a context switch whenever ownership moves between
// processes.
type exclusiveSched struct {
	eng      *sim.Engine
	spec     DeviceSpec
	queue    []exclJob
	running  bool
	lastProc int
	busy     float64
}

type exclJob struct {
	proc int
	w    KernelWork
	done func()
}

func newExclusiveSched(eng *sim.Engine, spec DeviceSpec) *exclusiveSched {
	return &exclusiveSched{eng: eng, spec: spec, lastProc: -1}
}

func (s *exclusiveSched) Submit(proc int, w KernelWork, done func()) {
	s.queue = append(s.queue, exclJob{proc: proc, w: w, done: done})
	if !s.running {
		s.serveNext()
	}
}

func (s *exclusiveSched) serveNext() {
	if len(s.queue) == 0 {
		s.running = false
		return
	}
	s.running = true
	job := s.queue[0]
	s.queue = s.queue[1:]
	d := job.w.SoloTime
	if job.proc != s.lastProc && s.lastProc != -1 {
		d += s.spec.CtxSwitch
	}
	s.lastProc = job.proc
	s.busy += d
	s.eng.After(d, func() {
		job.done()
		s.serveNext()
	})
}

func (s *exclusiveSched) BusySeconds() float64 { return s.busy }

// mpsSched is the MPS GPU: a processor-sharing server over occupancy.
// Kernels whose occupancies sum to less than 1 run concurrently at full
// speed (the MPS win for low-occupancy kernels); beyond that, everyone
// slows down proportionally. This reproduces both the ~6× throughput
// gain for underoccupied services (Figure 8) and the ~3× latency
// reduction versus time-sharing (Figure 9).
type mpsSched struct {
	eng        *sim.Engine
	spec       DeviceSpec
	active     map[*psJob]struct{}
	rate       float64
	lastUpdate float64
	completion *sim.Event
	busy       float64
}

type psJob struct {
	remaining float64 // solo-seconds of work left
	occ       float64
	done      func()
}

func newMPSSched(eng *sim.Engine, spec DeviceSpec) *mpsSched {
	return &mpsSched{eng: eng, spec: spec, active: map[*psJob]struct{}{}, rate: 1}
}

func (s *mpsSched) Submit(proc int, w KernelWork, done func()) {
	s.advance()
	occ := w.Occ
	if occ < 1e-6 {
		occ = 1e-6
	}
	job := &psJob{remaining: w.SoloTime, occ: occ, done: done}
	s.active[job] = struct{}{}
	s.reschedule()
}

// advance drains progress since the last update at the current rate.
func (s *mpsSched) advance() {
	dt := s.eng.Now() - s.lastUpdate
	if dt > 0 && len(s.active) > 0 {
		s.busy += dt
		progress := dt * s.rate
		for j := range s.active {
			j.remaining -= progress
		}
	}
	s.lastUpdate = s.eng.Now()
}

// reschedule recomputes the shared execution rate and the next
// completion event.
func (s *mpsSched) reschedule() {
	if s.completion != nil {
		s.completion.Cancel()
		s.completion = nil
	}
	if len(s.active) == 0 {
		return
	}
	var sumOcc float64
	minRem := math.Inf(1)
	for j := range s.active {
		sumOcc += j.occ
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	s.rate = 1.0
	if sumOcc > 1 {
		s.rate = 1 / sumOcc
	}
	if minRem < 0 {
		minRem = 0
	}
	s.completion = s.eng.After(minRem/s.rate, s.complete)
}

func (s *mpsSched) complete() {
	s.advance()
	const eps = 1e-12
	var finished []*psJob
	for j := range s.active {
		if j.remaining <= eps {
			finished = append(finished, j)
		}
	}
	for _, j := range finished {
		delete(s.active, j)
	}
	// Callbacks may submit follow-on kernels; reschedule first so state
	// is consistent, then fire.
	s.completion = nil
	s.reschedule()
	for _, j := range finished {
		j.done()
	}
}

func (s *mpsSched) BusySeconds() float64 { return s.busy }

// Scheduler is the exported GPU-arbitration interface for external
// simulations (internal/cluster builds full-WSC topologies around it).
type Scheduler interface {
	// Submit enqueues one kernel from process proc; done runs at the
	// simulated completion time.
	Submit(proc int, w KernelWork, done func())
	// BusySeconds returns accumulated busy time.
	BusySeconds() float64
}

// NewMPSScheduler returns an MPS (concurrent, occupancy-shared) GPU
// scheduler on the engine.
func NewMPSScheduler(eng *sim.Engine, spec DeviceSpec) Scheduler {
	return newMPSSched(eng, spec)
}

// NewExclusiveScheduler returns a time-sharing (non-MPS) GPU scheduler
// with context-switch penalties.
func NewExclusiveScheduler(eng *sim.Engine, spec DeviceSpec) Scheduler {
	return newExclusiveSched(eng, spec)
}
