package gpusim

import (
	"testing"
)

func openLoopCfg(rate float64) OpenLoopConfig {
	d := K40()
	// One batch-16 forward pass is a single ~67µs kernel, scaled by fill.
	return OpenLoopConfig{
		Server:        ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 1, MPS: true},
		ArrivalRate:   rate,
		BatchQueries:  16,
		BatchWindow:   2e-3,
		BatchKernels:  func(q int) []KernelWork { return []KernelWork{d.Work(2e8*float64(q)/16, 1e6, 1<<20)} },
		BytesPerQuery: 1e4,
		Seed:          7,
	}
}

func TestOpenLoopThroughputMatchesArrivals(t *testing.T) {
	// Far below capacity, completed QPS ≈ arrival rate.
	res := SimulateOpenLoop(openLoopCfg(2000), 2.0)
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.QPS < 1600 || res.QPS > 2400 {
		t.Fatalf("QPS %v, want ≈2000", res.QPS)
	}
}

func TestOpenLoopLatencyCurveShape(t *testing.T) {
	// A batching service has a U-shaped latency curve: at trickle load
	// queries wait out the batch window; in the sweet spot batches fill
	// instantly; near saturation queueing explodes (Figure 7c's elbow).
	low := SimulateOpenLoop(openLoopCfg(1000), 2.0)
	mid := SimulateOpenLoop(openLoopCfg(50000), 2.0)
	sat := SimulateOpenLoop(openLoopCfg(230000), 2.0)
	// Low load: window-dominated, bounded by window + service time.
	if low.MeanLat > 5e-3 {
		t.Fatalf("low-load latency %v far above the 2ms batch window", low.MeanLat)
	}
	if low.MeanLat < 5e-4 {
		t.Fatalf("low-load latency %v should include window waiting", low.MeanLat)
	}
	// Sweet spot: below the window wait.
	if mid.MeanLat >= low.MeanLat {
		t.Fatalf("sweet-spot latency %v should beat trickle-load %v", mid.MeanLat, low.MeanLat)
	}
	// Saturation: queueing dominates everything.
	if sat.MeanLat < 4*mid.MeanLat {
		t.Fatalf("near-saturation latency %v should explode past %v", sat.MeanLat, mid.MeanLat)
	}
}

func TestOpenLoopBatchFormation(t *testing.T) {
	// At high load the aggregator should form full batches; at trickle
	// load it should flush singles on the window.
	hot := SimulateOpenLoop(openLoopCfg(100000), 1.0)
	if hot.MeanBatch < 8 {
		t.Fatalf("hot mean batch %.1f, want near 16", hot.MeanBatch)
	}
	cold := SimulateOpenLoop(openLoopCfg(50), 2.0)
	if cold.MeanBatch > 4 {
		t.Fatalf("cold mean batch %.1f, want small", cold.MeanBatch)
	}
}

func TestOpenLoopPercentilesOrdered(t *testing.T) {
	res := SimulateOpenLoop(openLoopCfg(20000), 2.0)
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("percentiles out of order: %v %v %v", res.P50, res.P95, res.P99)
	}
	if res.MeanLat <= 0 {
		t.Fatal("no latency measured")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	a := SimulateOpenLoop(openLoopCfg(5000), 1.0)
	b := SimulateOpenLoop(openLoopCfg(5000), 1.0)
	if a.Completed != b.Completed || a.MeanLat != b.MeanLat {
		t.Fatal("open-loop simulation is not deterministic")
	}
}

func TestOpenLoopRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := openLoopCfg(0)
	SimulateOpenLoop(cfg, 1)
}
