// Package gpusim models the NVIDIA Tesla K40 GPU the paper's server is
// built from. Since this reproduction runs without GPU hardware, the
// package substitutes an analytic-plus-discrete-event performance model
// built from exactly the mechanisms the paper uses to explain its
// results: per-kernel roofline (compute vs DRAM traffic), occupancy
// derived from launched warps vs resident-warp capacity (Figures 6 and
// 7b), kernel-launch overhead, context-switch costs for time-shared
// processes vs shared-resource concurrency under MPS (Figures 8 and 9),
// and a shared host PCIe root complex (Figures 11-13). Five scalar
// calibration constants are documented on DeviceSpec; everything else
// derives from the networks' kernel descriptors (internal/nn).
package gpusim

import "math"

// DeviceSpec describes a GPU for the analytic timing model.
type DeviceSpec struct {
	Name       string
	SMs        int     // streaming multiprocessors
	CoresPerSM int     // CUDA cores per SM
	ClockHz    float64 // core clock
	// PeakFLOPS is the single-precision peak (2 ops/core/cycle FMA).
	PeakFLOPS float64
	MemBW     float64 // DRAM bandwidth, bytes/s
	MemBytes  int64   // device memory
	L2BW      float64 // L2 aggregate bandwidth, bytes/s (profiler counters)
	L1BW      float64 // L1/shared aggregate bandwidth, bytes/s
	// MaxWarpsPerSM is the resident-warp capacity per SM; occupancy is
	// launched warps divided by SMs*MaxWarpsPerSM (capped at 1).
	MaxWarpsPerSM int
	WarpSize      int

	// Calibration constants (see DESIGN.md §2). MaxEff is the fraction
	// of peak FLOPS dense GEMM sustains at full occupancy (cuBLAS on
	// Kepler). CompSat and MemSat are the occupancies at which compute
	// issue and DRAM bandwidth saturate; below them, achievable
	// throughput scales linearly with occupancy (the latency-hiding
	// model, after Hong & Kim). LaunchOverhead is the host-side gap per
	// kernel launch during which the GPU is idle for this process.
	// CtxSwitch is the penalty to switch the GPU between processes when
	// MPS is off. MinKernelTime is the latency floor of any kernel
	// (pipeline fill and drain).
	MaxEff         float64
	CompSat        float64
	MemSat         float64
	LaunchOverhead float64 // seconds
	CtxSwitch      float64 // seconds
	MinKernelTime  float64 // seconds
	// SmallTileEff is the peak-efficiency multiplier of the small-tile
	// (32×32) SGEMM kernels cuBLAS falls back to for small matrices:
	// more blocks (better occupancy) at lower per-thread efficiency.
	// The model runs both candidates and keeps the faster one.
	SmallTileEff float64
	// MinOcc floors the occupancy used for compute throughput: even a
	// one-block kernel keeps a few SMs pipelined rather than scaling
	// all the way to zero.
	MinOcc float64
}

// K40 returns the paper's accelerator: NVIDIA Tesla K40 (Table 2).
func K40() DeviceSpec {
	const clock = 745e6
	const sms = 15
	const cores = 192
	return DeviceSpec{
		Name:           "NVIDIA Tesla K40",
		SMs:            sms,
		CoresPerSM:     cores,
		ClockHz:        clock,
		PeakFLOPS:      2 * float64(sms*cores) * clock, // 4.29 TFLOPS
		MemBW:          288e9,
		MemBytes:       12 << 30,
		L2BW:           750e9,
		L1BW:           1.4e12,
		MaxWarpsPerSM:  64,
		WarpSize:       32,
		MaxEff:         0.70,
		CompSat:        1.0,
		MemSat:         0.05,
		LaunchOverhead: 6e-6,
		CtxSwitch:      60e-6,
		MinKernelTime:  2e-6,
		SmallTileEff:   0.60,
		MinOcc:         0.12,
	}
}

// Occupancy returns the achieved occupancy for a kernel launching the
// given number of threads: active warps over the device's resident-warp
// capacity, capped at 1. Small kernels (the NLP networks at low batch)
// land well under 20%, reproducing Figure 6.
func (d DeviceSpec) Occupancy(threads int) float64 {
	if threads <= 0 {
		return 0
	}
	warps := (threads + d.WarpSize - 1) / d.WarpSize
	cap := d.SMs * d.MaxWarpsPerSM
	occ := float64(warps) / float64(cap)
	if occ > 1 {
		occ = 1
	}
	return occ
}

// compEff returns the fraction of peak FLOPS achievable at occupancy
// occ: MaxEff once enough warps are resident to hide latency, scaling
// linearly below CompSat, floored at MinOcc.
func (d DeviceSpec) compEff(occ float64) float64 {
	if occ < d.MinOcc {
		occ = d.MinOcc
	}
	s := occ / d.CompSat
	if s > 1 {
		s = 1
	}
	return d.MaxEff * s
}

// memEff returns the fraction of DRAM bandwidth achievable at occupancy
// occ; a handful of warps per SM saturates DRAM.
func (d DeviceSpec) memEff(occ float64) float64 {
	s := occ / d.MemSat
	if s > 1 {
		s = 1
	}
	return s
}

// KernelWork summarises one kernel for the timing model.
type KernelWork struct {
	FLOPs float64
	Bytes float64
	// Occ is the resident-warp occupancy of the kernel as launched
	// (what MPS resource sharing sees). DispOcc is the achieved
	// occupancy a profiler would report — for small-tile GEMM kernels
	// it is discounted by their per-thread inefficiency, which is what
	// makes Figure 7b's curves rise smoothly with batch size.
	Occ      float64
	DispOcc  float64
	SoloTime float64 // execution time with the GPU to itself (no launch overhead)
}

// Work converts a kernel descriptor (FLOPs, bytes, threads) into timed
// work: the roofline maximum of compute time at occupancy-scaled
// efficiency and DRAM time at occupancy-scaled bandwidth.
func (d DeviceSpec) Work(flops, bytes float64, threads int) KernelWork {
	return d.workAt(flops, bytes, d.Occupancy(threads), 1)
}

func (d DeviceSpec) workAt(flops, bytes, occ, tileEff float64) KernelWork {
	var compute, memory float64
	if flops > 0 {
		compute = flops / (d.PeakFLOPS * d.compEff(occ) * tileEff)
	}
	if bytes > 0 {
		memory = bytes / (d.MemBW * d.memEff(occ))
	}
	t := math.Max(compute, memory)
	if t < d.MinKernelTime {
		t = d.MinKernelTime
	}
	if t <= 0 {
		t = 1e-9
	}
	return KernelWork{FLOPs: flops, Bytes: bytes, Occ: occ, DispOcc: occ * tileEff, SoloTime: t}
}

// GemmWork times an SGEMM kernel over an m×n output (count independent
// problems in the launch): cuBLAS-style, it evaluates a large-tile
// (128×64, full efficiency) and a small-tile (32×32, SmallTileEff)
// candidate and keeps the faster. Tile quantisation makes small-batch
// GEMMs underoccupy the device — the root cause of Figures 6 and 7b.
func (d DeviceSpec) GemmWork(flops, bytes float64, m, n, count int) KernelWork {
	if count < 1 {
		count = 1
	}
	tiles := func(tm, tn int) int {
		return ((m + tm - 1) / tm) * ((n + tn - 1) / tn) * count * 256
	}
	large := d.workAt(flops, bytes, d.Occupancy(tiles(128, 64)), 1)
	small := d.workAt(flops, bytes, d.Occupancy(tiles(32, 32)), d.SmallTileEff)
	if small.SoloTime < large.SoloTime {
		return small
	}
	return large
}

// M40 returns an NVIDIA Tesla M40 (Maxwell, 2015): the generation the
// paper's conclusions would first meet, with ~1.6× the K40's compute at
// the same DRAM bandwidth.
func M40() DeviceSpec {
	d := K40()
	d.Name = "NVIDIA Tesla M40"
	d.SMs = 24
	d.CoresPerSM = 128
	d.ClockHz = 1.114e9
	d.PeakFLOPS = 2 * float64(24*128) * 1.114e9 // 6.84 TFLOPS
	d.MemBW = 288e9
	d.MemBytes = 12 << 30
	d.L2BW = 1.1e12
	d.MaxWarpsPerSM = 64
	return d
}

// P100 returns an NVIDIA Tesla P100 (Pascal, 2016): HBM2 memory lifts
// the bandwidth roofline 2.5×, which is what the memory-bound FACE
// service needs.
func P100() DeviceSpec {
	d := K40()
	d.Name = "NVIDIA Tesla P100"
	d.SMs = 56
	d.CoresPerSM = 64
	d.ClockHz = 1.328e9
	d.PeakFLOPS = 2 * float64(56*64) * 1.328e9 // 9.5 TFLOPS
	d.MemBW = 732e9
	d.MemBytes = 16 << 30
	d.L2BW = 2e12
	d.MaxWarpsPerSM = 64
	return d
}
