package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"djinn/internal/nn"
)

func TestK40Spec(t *testing.T) {
	d := K40()
	// 2880 cores at 745 MHz, 2 FLOPs/cycle ≈ 4.29 TFLOPS.
	if math.Abs(d.PeakFLOPS-4.29e12) > 0.01e12 {
		t.Fatalf("peak %.3g, want ≈4.29e12", d.PeakFLOPS)
	}
	if d.MemBytes != 12<<30 {
		t.Fatal("K40 has 12 GB")
	}
	if d.SMs*d.MaxWarpsPerSM != 960 {
		t.Fatalf("resident warp capacity %d, want 960", d.SMs*d.MaxWarpsPerSM)
	}
}

func TestOccupancyMonotoneAndCapped(t *testing.T) {
	d := K40()
	if d.Occupancy(0) != 0 {
		t.Fatal("zero threads should be zero occupancy")
	}
	prev := 0.0
	for _, threads := range []int{32, 1024, 10000, 30720, 100000} {
		occ := d.Occupancy(threads)
		if occ < prev {
			t.Fatalf("occupancy not monotone at %d threads", threads)
		}
		if occ > 1 {
			t.Fatalf("occupancy %v > 1", occ)
		}
		prev = occ
	}
	if d.Occupancy(30720) != 1 {
		t.Fatalf("full complement of threads should reach occupancy 1, got %v", d.Occupancy(30720))
	}
	// Half the resident warps → 0.5.
	if got := d.Occupancy(30720 / 2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("half occupancy = %v", got)
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	d := K40()
	// Compute-bound kernel at full occupancy: time ≈ flops/(peak·MaxEff).
	w := d.Work(1e9, 1e3, 1<<20)
	want := 1e9 / (d.PeakFLOPS * d.MaxEff)
	if math.Abs(w.SoloTime-want) > 1e-9 {
		t.Fatalf("compute-bound time %v, want %v", w.SoloTime, want)
	}
	// Memory-bound kernel: time ≈ bytes/BW.
	w = d.Work(1e3, 1e9, 1<<20)
	want = 1e9 / d.MemBW
	if math.Abs(w.SoloTime-want) > 1e-9 {
		t.Fatalf("memory-bound time %v, want %v", w.SoloTime, want)
	}
	// Tiny kernel hits the latency floor.
	w = d.Work(10, 10, 32)
	if w.SoloTime != d.MinKernelTime {
		t.Fatalf("tiny kernel %v, want floor %v", w.SoloTime, d.MinKernelTime)
	}
}

func TestLowOccupancySlowsCompute(t *testing.T) {
	d := K40()
	full := d.Work(1e9, 0, 1<<20).SoloTime
	low := d.Work(1e9, 0, 3072).SoloTime // 10% occupancy
	ratio := low / full
	if ratio < 5 || ratio > 20 {
		t.Fatalf("10%% occupancy slowdown %.1fx, want ≈10x (linear latency-hiding model)", ratio)
	}
}

func TestGPUReplayInflatesMemoryTime(t *testing.T) {
	d := K40()
	ks := []nn.Kernel{{Name: "x", FLOPs: 1, BytesIn: 1e9, Threads: 1 << 20, GPUReplay: 3}}
	w := d.Lower(ks)[0]
	want := 3e9 / d.MemBW
	if math.Abs(w.SoloTime-want) > 1e-9 {
		t.Fatalf("replayed time %v, want %v", w.SoloTime, want)
	}
}

func TestForwardTimeIncludesLaunchOverhead(t *testing.T) {
	d := K40()
	ks := []nn.Kernel{
		{FLOPs: 1e6, BytesIn: 1e3, Threads: 1 << 20},
		{FLOPs: 1e6, BytesIn: 1e3, Threads: 1 << 20},
	}
	got := d.ForwardTime(ks)
	solo := d.Lower(ks)
	want := solo[0].SoloTime + solo[1].SoloTime + 2*d.LaunchOverhead
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("forward %v, want %v", got, want)
	}
}

func TestProfileWeightsByTime(t *testing.T) {
	d := K40()
	// A long full-occupancy kernel and a short low-occupancy one: the
	// aggregate occupancy should sit near the long kernel's.
	ks := []nn.Kernel{
		{FLOPs: 1e10, Threads: 1 << 20},
		{FLOPs: 1e6, Threads: 512},
	}
	p := d.ProfileForward(ks)
	if p.Occupancy < 0.9 {
		t.Fatalf("aggregate occupancy %v should be dominated by the long kernel", p.Occupancy)
	}
	if p.IPCRatio <= 0 || p.IPCRatio > 1 {
		t.Fatalf("ipc ratio %v", p.IPCRatio)
	}
	if p.L1Util < 0 || p.L1Util > 1 || p.L2Util < 0 || p.L2Util > 1 {
		t.Fatalf("utilisations out of range: %+v", p)
	}
}

func TestExclusiveSchedulerContextSwitch(t *testing.T) {
	d := K40()
	cfg := ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 2, MPS: false}
	w := d.Work(1e9, 0, 1<<20) // ~0.33ms each
	b := BatchWork{Kernels: []KernelWork{w}, Queries: 1}
	res := SimulateSaturation(cfg, b, 0.1, 1.0)
	// Two processes alternate; every kernel pays a context switch, so
	// the batch rate is below 1/(soloTime) but above 1/(solo+2*ctx).
	maxRate := 1 / (w.SoloTime + d.LaunchOverhead)
	minRate := 1 / (w.SoloTime + d.CtxSwitch + d.LaunchOverhead)
	if res.BatchRate > maxRate*1.01 || res.BatchRate < minRate*0.9 {
		t.Fatalf("batch rate %v outside [%v, %v]", res.BatchRate, minRate, maxRate)
	}
}

func TestMPSConcurrentLowOccupancyKernels(t *testing.T) {
	d := K40()
	// Kernels at 20% occupancy: 4 MPS processes should co-run at nearly
	// full speed each, quadrupling throughput vs a single process.
	w := d.Work(1e8, 0, 6144) // occ 0.2
	b := BatchWork{Kernels: []KernelWork{w}, Queries: 1}
	one := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 1, MPS: true}, b, 0.05, 0.5)
	four := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 4, MPS: true}, b, 0.05, 0.5)
	gain := four.QPS / one.QPS
	if gain < 3.3 || gain > 4.3 {
		t.Fatalf("MPS gain %v, want ≈4 for 20%%-occupancy kernels", gain)
	}
}

func TestMPSSharesFullOccupancyKernels(t *testing.T) {
	d := K40()
	// Full-occupancy kernels cannot co-run faster: 4 processes split
	// the GPU, aggregate throughput ≈ single-process (modulo overlap of
	// launch gaps).
	w := d.Work(1e9, 0, 1<<20)
	b := BatchWork{Kernels: []KernelWork{w}, Queries: 1}
	one := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 1, MPS: true}, b, 0.05, 0.5)
	four := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 4, MPS: true}, b, 0.05, 0.5)
	gain := four.QPS / one.QPS
	if gain < 0.95 || gain > 1.15 {
		t.Fatalf("full-occupancy MPS gain %v, want ≈1", gain)
	}
}

func TestMPSLatencyBeatsTimeSharing(t *testing.T) {
	d := K40()
	w := d.Work(5e8, 0, 9216) // occ 0.3
	b := BatchWork{Kernels: []KernelWork{w, w, w}, Queries: 1}
	mps := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 16, MPS: true}, b, 0.2, 2)
	non := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 16, MPS: false}, b, 0.2, 2)
	if mps.AvgLatency >= non.AvgLatency {
		t.Fatalf("MPS latency %v should beat time-sharing %v at 16 instances", mps.AvgLatency, non.AvgLatency)
	}
}

func TestMultiGPUScalesLinearlyWithoutPCIe(t *testing.T) {
	d := K40()
	w := d.Work(1e9, 0, 1<<20)
	b := BatchWork{Kernels: []KernelWork{w}, Queries: 4}
	q1 := SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 4, MPS: true}, b, 0.1, 1).QPS
	q8 := SimulateSaturation(ServerConfig{Device: d, GPUs: 8, ProcsPerGPU: 4, MPS: true}, b, 0.1, 1).QPS
	if ratio := q8 / q1; ratio < 7.5 || ratio > 8.5 {
		t.Fatalf("8-GPU scaling %v, want ≈8", ratio)
	}
}

func TestSharedPCIeCapsThroughput(t *testing.T) {
	d := K40()
	// Tiny compute, huge transfers: throughput must equal link BW.
	w := d.Work(1e6, 0, 1<<20)
	const bytesPerBatch = 10e6
	b := BatchWork{Kernels: []KernelWork{w}, Queries: 1, BytesIn: bytesPerBatch}
	cfg := ServerConfig{Device: d, GPUs: 8, ProcsPerGPU: 4, MPS: true, HostPCIeBW: 15.75e9}
	res := SimulateSaturation(cfg, b, 0.1, 1)
	wantRate := 15.75e9 / bytesPerBatch
	if math.Abs(res.BatchRate-wantRate)/wantRate > 0.05 {
		t.Fatalf("PCIe-bound batch rate %v, want ≈%v", res.BatchRate, wantRate)
	}
	if res.PCIeUtil < 0.95 {
		t.Fatalf("link should be saturated, util %v", res.PCIeUtil)
	}
}

func TestSimulationConservation(t *testing.T) {
	// Property: GPU busy time never exceeds wall-clock × GPU count, and
	// throughput is non-negative and finite, across random configs.
	d := K40()
	f := func(gpusRaw, procsRaw, occRaw uint8, mps bool) bool {
		gpus := int(gpusRaw%4) + 1
		procs := int(procsRaw%8) + 1
		threads := (int(occRaw%100) + 1) * 307
		w := d.Work(2e8, 1e6, threads)
		b := BatchWork{Kernels: []KernelWork{w}, Queries: 1}
		res := SimulateSaturation(ServerConfig{Device: d, GPUs: gpus, ProcsPerGPU: procs, MPS: mps}, b, 0.05, 0.3)
		if res.QPS < 0 || math.IsInf(res.QPS, 0) || math.IsNaN(res.QPS) {
			return false
		}
		// One in-flight job per GPU may be counted past the horizon.
		return res.GPUUtil <= 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMPSProcLimitEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond 16 MPS processes")
		}
	}()
	d := K40()
	b := BatchWork{Kernels: []KernelWork{d.Work(1e6, 0, 1024)}, Queries: 1}
	SimulateSaturation(ServerConfig{Device: d, GPUs: 1, ProcsPerGPU: 17, MPS: true}, b, 0.1, 1)
}

func TestSaturationQPSConverges(t *testing.T) {
	// SaturationQPS must agree with a long fixed-horizon run within 5%.
	d := K40()
	w := d.Work(5e8, 0, 1<<20)
	b := BatchWork{Kernels: []KernelWork{w, w}, Queries: 2}
	cfg := ServerConfig{Device: d, GPUs: 2, ProcsPerGPU: 4, MPS: true}
	quickRes := SaturationQPS(cfg, b)
	longRes := SimulateSaturation(cfg, b, 1, 10)
	if math.Abs(quickRes.QPS-longRes.QPS)/longRes.QPS > 0.05 {
		t.Fatalf("SaturationQPS %v vs long run %v", quickRes.QPS, longRes.QPS)
	}
}
