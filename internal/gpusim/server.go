package gpusim

import (
	"fmt"
	"math"
	"sort"

	"djinn/internal/nn"
	"djinn/internal/sim"
)

// MaxMPSProcs is the maximum number of simultaneous processes MPS
// supports (Section 5.2).
const MaxMPSProcs = 16

// ServerConfig describes one DNN GPU server for the discrete-event
// experiments.
type ServerConfig struct {
	Device      DeviceSpec
	GPUs        int
	ProcsPerGPU int  // concurrent DNN service instances per GPU
	MPS         bool // concurrent kernels (true) vs time-sharing (false)
	// HostPCIeBW is the aggregate host root-complex bandwidth shared by
	// all GPUs, bytes/s. Zero or +Inf disables the PCIe model entirely
	// (the paper's "input pinned in GPU memory" configuration, Fig 12).
	HostPCIeBW float64
	// PCIeLatency is the fixed per-transfer latency (DMA setup).
	PCIeLatency float64
	// NetBW is the goodput of the NIC team feeding this server from the
	// CPU tier (the Disaggregated design's network hop, Figure 14c);
	// query payloads traverse it before the PCIe complex. Zero disables
	// the hop (Integrated design: queries arrive on the local bus).
	NetBW float64
	// NetLatency is the fixed per-transfer network latency.
	NetLatency float64
}

// BatchWork is one batched query's worth of work: the forward-pass
// kernels at the batch size, the wire bytes moved across PCIe, and how
// many application queries the batch carries.
type BatchWork struct {
	Kernels  []KernelWork
	BytesIn  float64
	BytesOut float64
	Queries  int
}

// NewBatchWork lowers a network forward pass at the given batch size.
// queries is the number of application-level queries in the batch and
// bytesIn/bytesOut the total wire bytes for the batch.
func NewBatchWork(d DeviceSpec, ks []nn.Kernel, queries int, bytesIn, bytesOut float64) BatchWork {
	return BatchWork{Kernels: d.Lower(ks), BytesIn: bytesIn, BytesOut: bytesOut, Queries: queries}
}

// Result summarises a saturation run.
type Result struct {
	QPS        float64 // application queries per second
	BatchRate  float64 // batches per second
	AvgLatency float64 // mean batch latency, seconds
	P95Latency float64
	GPUUtil    float64 // mean busy fraction across GPUs
	PCIeUtil   float64 // host link utilisation (0 when unconstrained)
}

// SimulateSaturation runs a closed-loop saturation experiment: every
// service process always has a next batch ready (the paper's
// stress-test methodology). It returns steady-state throughput and
// latency measured over [warmup, warmup+measure).
func SimulateSaturation(cfg ServerConfig, b BatchWork, warmup, measure float64) Result {
	if cfg.GPUs <= 0 || cfg.ProcsPerGPU <= 0 {
		panic("gpusim: config needs at least one GPU and one process")
	}
	if cfg.MPS && cfg.ProcsPerGPU > MaxMPSProcs {
		panic(fmt.Sprintf("gpusim: MPS supports at most %d processes, got %d", MaxMPSProcs, cfg.ProcsPerGPU))
	}
	if len(b.Kernels) == 0 {
		panic("gpusim: batch has no kernels")
	}
	eng := sim.New()
	scheds := make([]scheduler, cfg.GPUs)
	for i := range scheds {
		if cfg.MPS {
			scheds[i] = newMPSSched(eng, cfg.Device)
		} else {
			scheds[i] = newExclusiveSched(eng, cfg.Device)
		}
	}
	pcieLimited := cfg.HostPCIeBW > 0 && !math.IsInf(cfg.HostPCIeBW, 1)
	var pcie *sim.FIFO
	if pcieLimited {
		pcie = sim.NewFIFO(eng)
	}
	netLimited := cfg.NetBW > 0 && !math.IsInf(cfg.NetBW, 1)
	var nic *sim.FIFO
	if netLimited {
		nic = sim.NewFIFO(eng)
	}

	end := warmup + measure
	var doneQueries int
	var doneBatches int
	var latencies []float64

	// Each process is a little state machine: transfer in → kernels
	// (with launch gaps) → transfer out → record → repeat.
	procID := 0
	for g := 0; g < cfg.GPUs; g++ {
		sched := scheds[g]
		for p := 0; p < cfg.ProcsPerGPU; p++ {
			id := procID
			procID++
			var runBatch func()
			runBatch = func() {
				if eng.Now() >= end {
					return
				}
				start := eng.Now()
				finish := func() {
					if eng.Now() >= warmup && eng.Now() < end {
						doneQueries += b.Queries
						doneBatches++
						latencies = append(latencies, eng.Now()-start)
					}
					runBatch()
				}
				afterKernels := func() {
					if pcieLimited && b.BytesOut > 0 {
						pcie.Acquire(b.BytesOut/cfg.HostPCIeBW, func() {
							eng.After(cfg.PCIeLatency, finish)
						})
					} else {
						finish()
					}
				}
				var runKernel func(i int)
				runKernel = func(i int) {
					if i >= len(b.Kernels) {
						afterKernels()
						return
					}
					// Host-side launch gap, then the kernel itself.
					eng.After(cfg.Device.LaunchOverhead, func() {
						sched.Submit(id, b.Kernels[i], func() { runKernel(i + 1) })
					})
				}
				toPCIe := func() {
					if pcieLimited && b.BytesIn > 0 {
						pcie.Acquire(b.BytesIn/cfg.HostPCIeBW, func() {
							eng.After(cfg.PCIeLatency, func() { runKernel(0) })
						})
					} else {
						runKernel(0)
					}
				}
				if netLimited && b.BytesIn > 0 {
					nic.Acquire(b.BytesIn/cfg.NetBW, func() {
						eng.After(cfg.NetLatency, toPCIe)
					})
				} else {
					toPCIe()
				}
			}
			runBatch()
		}
	}
	eng.RunUntil(end)

	res := Result{
		QPS:       float64(doneQueries) / measure,
		BatchRate: float64(doneBatches) / measure,
	}
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.AvgLatency = sum / float64(len(latencies))
		sort.Float64s(latencies)
		res.P95Latency = latencies[int(float64(len(latencies))*0.95)]
	}
	var busy float64
	for _, s := range scheds {
		busy += s.BusySeconds()
	}
	res.GPUUtil = busy / (float64(cfg.GPUs) * end)
	if pcieLimited {
		res.PCIeUtil = pcie.Utilization()
	}
	return res
}

// SaturationQPS is a convenience wrapper returning only throughput,
// with a warmup and measurement window automatically scaled to the
// batch's single-process time so fast and slow services both converge.
func SaturationQPS(cfg ServerConfig, b BatchWork) Result {
	var solo float64
	for _, w := range b.Kernels {
		solo += w.SoloTime + cfg.Device.LaunchOverhead
	}
	// Enough time for every process to complete many batches.
	horizon := solo * 60 * float64(cfg.ProcsPerGPU)
	if horizon < 0.25 {
		horizon = 0.25
	}
	if horizon > 60 {
		horizon = 60
	}
	return SimulateSaturation(cfg, b, horizon/5, horizon)
}
