package sched

import (
	"context"
	"sync"
	"sync/atomic"
)

// waiter is one batch waiting for an execution slot.
type waiter struct {
	ch      chan struct{}
	aborted atomic.Bool // set by a cancelled Acquire; skipped at grant
}

// Gate is the cross-application execution queue: a semaphore of
// execution slots whose waiters are ordered by tenant priority. When
// slots are contended, pending batches are granted by smooth weighted
// round-robin over the priority classes (weights 4:2:1), so a
// latency-critical app's batch preempts queued throughput work without
// ever starving it.
//
// slots <= 0 means unlimited: Acquire returns immediately and the gate
// imposes no ordering (the single-tenant / unconfigured case).
type Gate struct {
	slots int

	mu      sync.Mutex
	inUse   int
	queues  [numPriorities][]*waiter
	current [numPriorities]int // smooth-WRR running credit
}

// NewGate creates a gate with the given number of concurrent execution
// slots (<= 0 = unlimited).
func NewGate(slots int) *Gate { return &Gate{slots: slots} }

// Slots returns the configured slot count (<= 0 = unlimited).
func (g *Gate) Slots() int { return g.slots }

// Acquire blocks until an execution slot is free (or ctx is done,
// returning its error). A nil gate or an unlimited one admits
// immediately.
func (g *Gate) Acquire(ctx context.Context, p Priority) error {
	if g == nil || g.slots <= 0 {
		return nil
	}
	if p < 0 || p >= numPriorities {
		p = Standard
	}
	g.mu.Lock()
	if g.inUse < g.slots && g.queueLenLocked() == 0 {
		g.inUse++
		g.mu.Unlock()
		return nil
	}
	w := &waiter{ch: make(chan struct{})}
	g.queues[p] = append(g.queues[p], w)
	g.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		if w.aborted.CompareAndSwap(false, true) {
			return ctx.Err()
		}
		// A grant raced the cancellation: the slot is ours; hand it
		// back before reporting the cancellation.
		<-w.ch
		g.Release()
		return ctx.Err()
	}
}

// Release returns an execution slot, granting it to the next pending
// batch chosen by weighted round-robin across the priority classes.
func (g *Gate) Release() {
	if g == nil || g.slots <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		w := g.nextLocked()
		if w == nil {
			g.inUse--
			return
		}
		if w.aborted.CompareAndSwap(false, true) {
			// Hand the slot over directly: inUse stays constant.
			close(w.ch)
			return
		}
		// The waiter cancelled; try the next one.
	}
}

// queueLenLocked is the total number of pending waiters.
func (g *Gate) queueLenLocked() int {
	n := 0
	for _, q := range g.queues {
		n += len(q)
	}
	return n
}

// nextLocked pops the next waiter by smooth weighted round-robin:
// every class with waiters gains its weight in credit, the richest
// class is served and pays the total weight of the contending classes.
// With all three classes backlogged the grant order interleaves
// 4:2:1 — strict enough that latency-critical work overtakes queued
// bulk batches, fair enough that bulk still progresses.
func (g *Gate) nextLocked() *waiter {
	total := 0
	best := -1
	for p := range g.queues {
		if len(g.queues[p]) == 0 {
			continue
		}
		w := Priority(p).Weight()
		g.current[p] += w
		total += w
		if best < 0 || g.current[p] > g.current[best] {
			best = p
		}
	}
	if best < 0 {
		return nil
	}
	g.current[best] -= total
	w := g.queues[best][0]
	g.queues[best] = g.queues[best][1:]
	return w
}
