// Package sched is the SLO-aware decision tier between the DjiNN
// protocol front-end and the NN runners. The paper picks one fixed
// batch size and flush window per application at registration time;
// this package replaces those constants with a feedback loop:
//
//   - Each application declares an SLO — a target p99 latency — and a
//     tenant priority class (Config).
//   - An admission controller (Controller.Admit) estimates the queue
//     delay a new query would see from the live service-time EWMA and
//     the instances already admitted, and rejects queries that cannot
//     meet their budget *before* they occupy queue capacity, instead
//     of letting them rot until batch assembly notices the corpse.
//   - An adaptive batch controller (AIMD) resizes the effective batch
//     size and flush window within [1, MaxBatch] to hold observed p99
//     at the SLO while maximizing instances per second.
//   - A weighted priority gate (Gate) orders pending batch executions
//     across applications so latency-critical tenants preempt
//     throughput tenants when execution slots are contended.
//
// Everything here is deliberately free of service-package types so the
// controllers are testable as pure state machines.
package sched

import (
	"fmt"
	"strings"
)

// Priority is an application's tenant class. It orders batch
// executions across applications at the Gate and is reported by the
// "sched" control verb.
type Priority int

const (
	// Throughput is bulk work: it fills whatever capacity the
	// latency-critical tenants leave (e.g. offline IMC backfill).
	Throughput Priority = iota
	// Standard is the default interactive class.
	Standard
	// LatencyCritical tenants (e.g. ASR) preempt the other classes
	// whenever execution slots are contended.
	LatencyCritical

	numPriorities
)

// Weight is the class's share in the gate's weighted round-robin:
// when every class has pending batches, grants interleave 4:2:1
// (latency-critical : standard : throughput), so low classes are
// deprioritised but never starved.
func (p Priority) Weight() int {
	switch p {
	case LatencyCritical:
		return 4
	case Standard:
		return 2
	}
	return 1
}

// String names the class as the control verb reports it.
func (p Priority) String() string {
	switch p {
	case Throughput:
		return "throughput"
	case Standard:
		return "standard"
	case LatencyCritical:
		return "latency"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority converts a class name ("throughput", "standard",
// "latency") back to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "throughput":
		return Throughput, nil
	case "standard":
		return Standard, nil
	case "latency":
		return LatencyCritical, nil
	}
	return 0, fmt.Errorf("sched: unknown priority %q", s)
}
