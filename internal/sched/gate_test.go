package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateUnlimited: a nil or slotless gate admits immediately and
// Release is a no-op.
func TestGateUnlimited(t *testing.T) {
	var nilGate *Gate
	if err := nilGate.Acquire(context.Background(), Standard); err != nil {
		t.Fatalf("nil gate Acquire: %v", err)
	}
	nilGate.Release()

	g := NewGate(0)
	for i := 0; i < 100; i++ {
		if err := g.Acquire(context.Background(), LatencyCritical); err != nil {
			t.Fatalf("unlimited gate Acquire: %v", err)
		}
	}
	g.Release()
}

// TestGateSerializes: with one slot, at most one holder runs at a time.
func TestGateSerializes(t *testing.T) {
	g := NewGate(1)
	var cur, max atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background(), Standard); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			if c := cur.Add(1); c > max.Load() {
				max.Store(c)
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if max.Load() != 1 {
		t.Fatalf("observed %d concurrent holders through a 1-slot gate", max.Load())
	}
}

// TestGateWeightedOrder: with one busy slot and a backlog in every
// class, grants interleave by weight — latency-critical work is served
// ~4x as often as throughput, and nothing starves.
func TestGateWeightedOrder(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background(), Standard); err != nil {
		t.Fatal(err)
	}

	// Queue 7 waiters per class. Enqueue order within a class is FIFO;
	// we record the class of each grant.
	const perClass = 7
	grants := make(chan Priority, 3*perClass)
	var wg sync.WaitGroup
	for _, p := range []Priority{Throughput, Standard, LatencyCritical} {
		for i := 0; i < perClass; i++ {
			wg.Add(1)
			go func(p Priority) {
				defer wg.Done()
				if err := g.Acquire(context.Background(), p); err != nil {
					t.Errorf("Acquire(%v): %v", p, err)
					return
				}
				grants <- p
				g.Release()
			}(p)
		}
		// Let this class's waiters park before the next class queues,
		// so the backlog really holds all three classes at once.
		waitForWaiters(t, g, (int(p)+1)*perClass)
	}

	g.Release() // open the floodgate
	wg.Wait()
	close(grants)

	var order []Priority
	for p := range grants {
		order = append(order, p)
	}
	// First 7 grants: smooth WRR over weights 4:2:1 serves latency 4
	// times, standard 2, throughput 1 per cycle of 7.
	counts := map[Priority]int{}
	for _, p := range order[:7] {
		counts[p]++
	}
	if counts[LatencyCritical] != 4 || counts[Standard] != 2 || counts[Throughput] != 1 {
		t.Fatalf("first WRR cycle served latency=%d standard=%d throughput=%d, want 4/2/1 (order %v)",
			counts[LatencyCritical], counts[Standard], counts[Throughput], order)
	}
	// The very first grant goes to the heaviest class.
	if order[0] != LatencyCritical {
		t.Fatalf("first grant went to %v, want latency-critical (order %v)", order[0], order)
	}
}

// waitForWaiters blocks until the gate has n parked waiters.
func waitForWaiters(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		have := g.queueLenLocked()
		g.mu.Unlock()
		if have >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters parked", have, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGateCancelDoesNotLeakSlot: a waiter that gives up must not eat a
// grant — the slot stays usable by everyone else.
func TestGateCancelDoesNotLeakSlot(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background(), Standard); err != nil {
		t.Fatal(err)
	}

	// Park a waiter, then cancel it.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.Acquire(ctx, Standard) }()
	waitForWaiters(t, g, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire returned %v, want context.Canceled", err)
	}

	// Release the original slot; a fresh Acquire must get it even
	// though a corpse sat in the queue.
	g.Release()
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background(), Throughput) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-cancel Acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slot leaked: Acquire after cancelled waiter never completed")
	}
	g.Release()
}

// TestGateCancelGrantRace: hammer cancellation against grants; every
// slot handed out must come back, so the final state is fully idle.
func TestGateCancelGrantRace(t *testing.T) {
	g := NewGate(2)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
			defer cancel()
			if err := g.Acquire(ctx, Priority(i%int(numPriorities))); err != nil {
				return // cancelled before grant; nothing to release
			}
			time.Sleep(50 * time.Microsecond)
			g.Release()
		}(i)
	}
	wg.Wait()
	g.mu.Lock()
	inUse, pending := g.inUse, g.queueLenLocked()
	g.mu.Unlock()
	if inUse != 0 || pending != 0 {
		t.Fatalf("gate not idle after churn: inUse=%d pending=%d", inUse, pending)
	}
	// Both slots must still be grantable.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(context.Background(), Standard); err != nil {
			t.Fatalf("final Acquire %d: %v", i, err)
		}
	}
}
