package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config declares one application's scheduling contract.
type Config struct {
	// SLO is the target p99 latency. Zero disables scheduling for the
	// app (static batching, no admission control).
	SLO time.Duration
	// Priority is the app's tenant class at the execution gate.
	Priority Priority
	// MaxBatch bounds the adaptive batch size (the runner's capacity).
	// Zero means 64.
	MaxBatch int
	// Workers is how many concurrent workers drain the app's batches
	// (the admission estimate divides queued work across them).
	// Zero means 1.
	Workers int
	// Safety derates the admission budget: a query is admitted only
	// while the delay estimate fits within Safety×budget, leaving
	// room for estimation error before the SLO is breached.
	// Zero means 0.8.
	Safety float64
	// EvalEvery is how many completions pass between AIMD steps.
	// Zero means 64.
	EvalEvery int
	// AIMD overrides the batch controller's tuning; SLO, Min and Max
	// are filled in from this Config when unset.
	AIMD AIMDConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Safety <= 0 || c.Safety > 1 {
		c.Safety = 0.8
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 64
	}
	if c.AIMD.SLO == 0 {
		c.AIMD.SLO = c.SLO
	}
	if c.AIMD.Max == 0 {
		c.AIMD.Max = c.MaxBatch
	}
	return c
}

// recentSize bounds the latency ring the AIMD's p99 is computed over:
// large enough that a p99 is meaningful, small enough that the
// controller reacts to the last few batches rather than ancient
// history.
const recentSize = 256

// ewmaAlpha is the smoothing factor of the per-instance service-time
// estimate: ~1/8 weight per new batch observation.
const ewmaAlpha = 0.125

// Controller runs one application's scheduling feedback loop. The
// serving path calls Admit before enqueue, Dropped for admitted
// queries that die before execution, ObserveBatch after each forward
// pass, and Complete per answered query; BatchSize and Window replace
// the app's static aggregation parameters.
type Controller struct {
	cfg Config

	queued   atomic.Int64 // instances admitted but not yet executed
	admitted atomic.Int64 // queries past admission
	rejected atomic.Int64 // queries refused at admission
	pressure atomic.Int64 // rejections since the last AIMD step

	mu        sync.Mutex
	aimd      *AIMD
	perInstNS float64 // EWMA of forward nanoseconds per instance
	recent    [recentSize]time.Duration
	recentN   int // total completions ever recorded
	sinceEval int
}

// NewController creates the feedback loop for one app. It panics if
// the config declares no SLO — a static app should not construct one.
func NewController(cfg Config) *Controller {
	if cfg.SLO <= 0 {
		panic("sched: NewController requires a positive SLO")
	}
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, aimd: NewAIMD(cfg.AIMD)}
}

// SLO returns the declared target p99.
func (c *Controller) SLO() time.Duration { return c.cfg.SLO }

// Priority returns the app's tenant class.
func (c *Controller) Priority() Priority { return c.cfg.Priority }

// BatchSize returns the current effective batch size in instances.
func (c *Controller) BatchSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aimd.Batch()
}

// Window returns the current flush window.
func (c *Controller) Window() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aimd.Window()
}

// estimate computes the delay a query of n instances would see if
// admitted now: everything already admitted plus itself must drain
// through the worker pool at the observed per-instance service time,
// and the query may wait up to one flush window for its batch to
// assemble. The two overlap — workers chew the backlog while the new
// query's batch fills — so the estimate is the slower of the two, not
// their sum (summing parks the estimate at the admission threshold at
// perfectly healthy utilization). perInstNS and window are passed in
// by the caller holding the lock (Admit) or reading a snapshot
// (Snapshot).
func (c *Controller) estimate(perInstNS float64, window time.Duration, n int) time.Duration {
	queued := c.queued.Load()
	work := time.Duration((float64(queued) + float64(n)) * perInstNS / float64(c.cfg.Workers))
	if work > window {
		return work
	}
	return window
}

// Admit decides whether a query of n instances can still meet budget
// (the caller's remaining deadline, or the app SLO when the query
// carries none). Admission increments the queued-instance account;
// every admitted query must later be balanced by exactly one Executed
// or Dropped. A cold controller (no service-time observation yet)
// admits everything.
func (c *Controller) Admit(budget time.Duration, n int) (time.Duration, bool) {
	c.mu.Lock()
	perInst, window := c.perInstNS, c.aimd.Window()
	c.mu.Unlock()
	est := c.estimate(perInst, window, n)
	if perInst > 0 && float64(est) > c.cfg.Safety*float64(budget) {
		c.rejected.Add(1)
		c.pressure.Add(1)
		return est, false
	}
	c.admitted.Add(1)
	c.queued.Add(int64(n))
	return est, true
}

// Executed balances Admit for instances whose forward pass finished.
// Settling at completion (not pickup) deliberately leaves the in-flight
// batch in the queued account: its residual service time is real wait
// for everything admitted behind it, and counting it fully errs on the
// conservative side — an estimate that ignored it would admit queries
// whose true delay lands past the SLO by up to one batch service.
func (c *Controller) Executed(n int) { c.queued.Add(int64(-n)) }

// Dropped balances Admit for instances that died before execution
// (expired at assembly, or failed by the shutdown drain).
func (c *Controller) Dropped(n int) { c.queued.Add(int64(-n)) }

// ObserveBatch feeds one forward pass's duration and instance count
// into the service-time EWMA the admission estimate uses.
func (c *Controller) ObserveBatch(forward time.Duration, instances int) {
	if instances <= 0 || forward <= 0 {
		return
	}
	sample := float64(forward) / float64(instances)
	c.mu.Lock()
	if c.perInstNS == 0 {
		c.perInstNS = sample
	} else {
		c.perInstNS += ewmaAlpha * (sample - c.perInstNS)
	}
	c.mu.Unlock()
}

// Complete feeds one answered query's server-side latency (enqueue →
// response) and, every EvalEvery completions, steps the AIMD on the
// p99 of the recent window.
func (c *Controller) Complete(latency time.Duration) {
	c.mu.Lock()
	c.recent[c.recentN%recentSize] = latency
	c.recentN++
	c.sinceEval++
	if c.sinceEval >= c.cfg.EvalEvery {
		c.sinceEval = 0
		c.aimd.Observe(c.recentP99Locked(), c.pressure.Swap(0) > 0)
	}
	c.mu.Unlock()
}

// recentP99Locked computes the p99 over the recent-latency ring.
func (c *Controller) recentP99Locked() time.Duration {
	n := c.recentN
	if n > recentSize {
		n = recentSize
	}
	if n == 0 {
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, c.recent[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*99 + 99) / 100
	if idx > n {
		idx = n
	}
	return buf[idx-1]
}

// Info is a point-in-time snapshot of one app's scheduler, rendered by
// the "sched" control verb and scraped by the admin plane.
type Info struct {
	SLO      time.Duration
	Priority Priority
	Batch    int           // current effective batch size (instances)
	Window   time.Duration // current flush window
	Admitted int64         // queries past admission since start
	Rejected int64         // queries refused at admission since start
	Queued   int64         // instances admitted but not yet executed
	EstWait  time.Duration // delay estimate a 1-instance query would see now
	P99      time.Duration // p99 server-side latency over the recent window
}

// AdmissionRate is the fraction of admission decisions that admitted,
// in [0,1]; 1 with no decisions yet.
func (i Info) AdmissionRate() float64 {
	total := i.Admitted + i.Rejected
	if total == 0 {
		return 1
	}
	return float64(i.Admitted) / float64(total)
}

// Snapshot captures the controller's live state.
func (c *Controller) Snapshot() Info {
	c.mu.Lock()
	perInst := c.perInstNS
	batch, window := c.aimd.Batch(), c.aimd.Window()
	p99 := c.recentP99Locked()
	c.mu.Unlock()
	return Info{
		SLO:      c.cfg.SLO,
		Priority: c.cfg.Priority,
		Batch:    batch,
		Window:   window,
		Admitted: c.admitted.Load(),
		Rejected: c.rejected.Load(),
		Queued:   c.queued.Load(),
		EstWait:  c.estimate(perInst, window, 1),
		P99:      p99,
	}
}

// String renders the Info as the "sched" control verb's reply: ordered
// key=value fields, one line. ParseInfo inverts it.
func (i Info) String() string {
	return fmt.Sprintf(
		"slo=%s priority=%s batch=%d window=%s admitted=%d rejected=%d queued=%d est_wait=%s p99=%s admission_rate=%.3f",
		i.SLO, i.Priority, i.Batch, i.Window,
		i.Admitted, i.Rejected, i.Queued, i.EstWait, i.P99, i.AdmissionRate())
}

// ParseInfo parses a "sched" control verb reply back into an Info.
// Unknown keys are ignored (a newer server may add fields); malformed
// values for known keys are errors. The derived admission_rate field
// is ignored — it is recomputed from the counters.
func ParseInfo(s string) (Info, error) {
	var info Info
	for _, field := range strings.Fields(s) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Info{}, fmt.Errorf("sched: malformed field %q", field)
		}
		var err error
		switch k {
		case "slo":
			info.SLO, err = time.ParseDuration(v)
		case "priority":
			info.Priority, err = ParsePriority(v)
		case "batch":
			info.Batch, err = strconv.Atoi(v)
		case "window":
			info.Window, err = time.ParseDuration(v)
		case "admitted":
			info.Admitted, err = strconv.ParseInt(v, 10, 64)
		case "rejected":
			info.Rejected, err = strconv.ParseInt(v, 10, 64)
		case "queued":
			info.Queued, err = strconv.ParseInt(v, 10, 64)
		case "est_wait":
			info.EstWait, err = time.ParseDuration(v)
		case "p99":
			info.P99, err = time.ParseDuration(v)
		}
		if err != nil {
			return Info{}, fmt.Errorf("sched: bad %s value %q: %v", k, v, err)
		}
	}
	if info.SLO < 0 || info.Batch < 0 || info.Window < 0 || info.EstWait < 0 || info.P99 < 0 {
		return Info{}, fmt.Errorf("sched: negative field in %q", s)
	}
	return info, nil
}
