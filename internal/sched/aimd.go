package sched

import "time"

// AIMDConfig tunes the adaptive batch controller.
type AIMDConfig struct {
	// Min and Max bound the batch size in instances. Max is typically
	// the runner's MaxBatch; Min defaults to 1.
	Min, Max int
	// SLO is the target p99 latency the controller holds.
	SLO time.Duration
	// Headroom is the dead band's lower edge as a fraction of the SLO:
	// the batch grows only while p99 < Headroom×SLO, holds inside
	// [Headroom×SLO, SLO], and shrinks past the SLO. The band is what
	// keeps the controller from oscillating around equilibrium.
	// Zero means 0.8.
	Headroom float64
	// Backoff is the multiplicative decrease applied when p99 exceeds
	// the SLO. Zero means 0.5.
	Backoff float64
	// ProbeAfter is how many consecutive under-headroom observations at
	// the post-overload ceiling earn one probe step past it. Zero
	// means 8.
	ProbeAfter int
	// MinWindow and MaxWindow bound the flush window derived from the
	// batch size. Zero means 100µs and SLO/2: a window too small to
	// assemble a batch at the offered load forfeits launch amortisation
	// entirely (the effective batch collapses to whatever trickles in),
	// so the ceiling must leave room to gather — the p99 feedback
	// shrinks the batch, and with it the window, whenever that wait
	// actually endangers the SLO.
	MinWindow, MaxWindow time.Duration
}

func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Headroom <= 0 || c.Headroom >= 1 {
		c.Headroom = 0.8
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.5
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 8
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 100 * time.Microsecond
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = c.SLO / 2
		if c.MaxWindow < c.MinWindow {
			c.MaxWindow = c.MinWindow
		}
	}
	return c
}

// AIMD is the adaptive batch controller: additive-increase /
// multiplicative-decrease over the effective batch size, driven by
// observed p99 latency against the SLO. It is a pure state machine —
// no clocks, no goroutines — so its convergence behaviour is testable
// with synthetic latency sequences.
//
// A TCP-style ceiling keeps it from sawtoothing: an overload at size s
// remembers s-1 as the ceiling, the additive increase stops there, and
// only ProbeAfter consecutive healthy observations earn one probe step
// past it. At equilibrium the size therefore varies by at most one
// step per ProbeAfter observations.
type AIMD struct {
	cfg        AIMDConfig
	size       int
	ceiling    int // 0 = none; else the last known-bad size minus one
	healthyRun int // consecutive under-headroom observations
}

// NewAIMD creates a controller starting at the minimum batch size
// (conservative: it ramps up while the SLO has headroom).
func NewAIMD(cfg AIMDConfig) *AIMD {
	cfg = cfg.withDefaults()
	return &AIMD{cfg: cfg, size: cfg.Min}
}

// Batch returns the current effective batch size in instances.
func (a *AIMD) Batch() int { return a.size }

// Window returns the flush window matching the current batch size:
// linear between MinWindow and MaxWindow as the batch grows from Min
// to Max. A small target batch flushes almost immediately (latency
// recovery); a large one may wait longer to fill (throughput).
func (a *AIMD) Window() time.Duration {
	if a.cfg.Max == a.cfg.Min {
		return a.cfg.MaxWindow
	}
	frac := float64(a.size-a.cfg.Min) / float64(a.cfg.Max-a.cfg.Min)
	return a.cfg.MinWindow + time.Duration(frac*float64(a.cfg.MaxWindow-a.cfg.MinWindow))
}

// Observe feeds one p99 measurement and advances the controller.
// pressured reports that admission rejected queries since the last
// observation: shedding while the served p99 still holds means the
// system is capacity-limited at this batch size, and growing — even
// past the ceiling — is the only way to buy throughput. Without the
// signal the two controllers deadlock: admission keeps the queue at
// exactly Safety×SLO of delay, which is the grow band's upper edge,
// so a cold-start overload that floored the batch would pin it there
// while admission sheds the load growth could have served.
func (a *AIMD) Observe(p99 time.Duration, pressured bool) {
	cfg := a.cfg
	if p99 > cfg.SLO {
		// Overload: remember where it hurt, back off multiplicatively.
		a.ceiling = a.size - 1
		if a.ceiling < cfg.Min {
			a.ceiling = cfg.Min
		}
		a.size = int(float64(a.size) * cfg.Backoff)
		if a.size < cfg.Min {
			a.size = cfg.Min
		}
		a.healthyRun = 0
		return
	}
	if pressured {
		// Capacity-limited, not latency-limited: probe upward. Lifting
		// the ceiling is deliberate — it was set by queue delay at a
		// smaller size, not by this size's service time, and the next
		// genuine SLO breach re-arms it.
		if a.size < cfg.Max {
			a.size++
			if a.ceiling > 0 && a.ceiling < a.size {
				a.ceiling = a.size
			}
		}
		a.healthyRun = 0
		return
	}
	if float64(p99) >= cfg.Headroom*float64(cfg.SLO) {
		// Dead band: near the SLO but not over it. Hold.
		a.healthyRun = 0
		return
	}
	// Clear headroom: grow additively toward the ceiling (or Max).
	limit := cfg.Max
	if a.ceiling > 0 && a.ceiling < limit {
		limit = a.ceiling
	}
	switch {
	case a.size < limit:
		a.size++
		a.healthyRun = 0
	case a.ceiling > 0 && a.ceiling < cfg.Max:
		// At the post-overload ceiling: a sustained healthy run here
		// earns one cautious probe past the last failure point.
		a.healthyRun++
		if a.healthyRun >= cfg.ProbeAfter {
			a.ceiling++
			a.size = a.ceiling
			a.healthyRun = 0
		}
	}
}
