package sched

import (
	"testing"
	"time"
)

// ms shortens synthetic latencies.
func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

// drive feeds a synthetic p99 sequence and returns every batch size
// the controller passed through (after each observation).
func drive(a *AIMD, seq []time.Duration) []int {
	sizes := make([]int, 0, len(seq))
	for _, p99 := range seq {
		a.Observe(p99, false)
		sizes = append(sizes, a.Batch())
	}
	return sizes
}

// repeat builds a constant latency sequence.
func repeat(d time.Duration, n int) []time.Duration {
	seq := make([]time.Duration, n)
	for i := range seq {
		seq[i] = d
	}
	return seq
}

// TestAIMDTable drives the controller as a pure function through the
// three canonical regimes — stable under-SLO traffic, a step overload,
// and a transient burst — and asserts convergence plus bounded
// oscillation at equilibrium.
func TestAIMDTable(t *testing.T) {
	cfg := AIMDConfig{Min: 1, Max: 32, SLO: ms(50)}
	cases := []struct {
		name string
		seq  []time.Duration
		// wantFinal is the expected batch size after the sequence;
		// wantMaxSwing bounds |size[i+1]-size[i]| over the final
		// quarter of the run (the converged regime).
		wantFinal    func(got int) bool
		wantMaxSwing int
	}{
		{
			// Stable: p99 always well under the SLO. The batch must
			// ramp to Max and stay there.
			name:         "stable-under-slo",
			seq:          repeat(ms(10), 64),
			wantFinal:    func(got int) bool { return got == 32 },
			wantMaxSwing: 0,
		},
		{
			// Dead band: p99 between Headroom×SLO and SLO. Hold
			// wherever the ramp was when the band was entered.
			name:         "dead-band-holds",
			seq:          append(repeat(ms(10), 8), repeat(ms(45), 32)...),
			wantFinal:    func(got int) bool { return got == 9 },
			wantMaxSwing: 0,
		},
		{
			// Step overload: after ramping, p99 jumps past the SLO and
			// stays there. The size must collapse to Min and hold (every
			// overload halves and re-arms the ceiling; nothing recovers
			// while p99 stays high).
			name:         "step-overload",
			seq:          append(repeat(ms(10), 40), repeat(ms(80), 24)...),
			wantFinal:    func(got int) bool { return got == 1 },
			wantMaxSwing: 0,
		},
		{
			// Burst: one overload spike, then healthy again. The size
			// must recover toward the ceiling and then probe past it
			// slowly — never oscillating by more than one step at a time
			// in the recovery regime.
			name:         "burst-recovers",
			seq:          append(append(repeat(ms(10), 40), ms(80)), repeat(ms(10), 40)...),
			wantFinal:    func(got int) bool { return got >= 28 },
			wantMaxSwing: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAIMD(cfg)
			sizes := drive(a, tc.seq)
			final := sizes[len(sizes)-1]
			if !tc.wantFinal(final) {
				t.Errorf("final batch = %d (trajectory %v)", final, sizes)
			}
			// Oscillation bound over the final quarter of the run.
			for i := len(sizes) * 3 / 4; i < len(sizes)-1; i++ {
				swing := sizes[i+1] - sizes[i]
				if swing < 0 {
					swing = -swing
				}
				if swing > tc.wantMaxSwing {
					t.Fatalf("step %d→%d swings %d→%d, beyond %d (trajectory %v)",
						i, i+1, sizes[i], sizes[i+1], tc.wantMaxSwing, sizes)
				}
			}
		})
	}
}

// TestAIMDPressureClimbsPastCeiling: admission pressure with the p99
// inside the SLO is a capacity signal — the size must climb one step
// per observation, straight through both the dead band and a ceiling
// armed by a cold-start overload, until either Max or a genuine SLO
// breach stops it. This is the escape from the stuck equilibrium where
// admission holds queue delay at exactly the grow band's upper edge.
func TestAIMDPressureClimbsPastCeiling(t *testing.T) {
	a := NewAIMD(AIMDConfig{Min: 1, Max: 32, SLO: ms(50)})
	// Cold-start overload at Min floors the ceiling at Min.
	a.Observe(ms(200), false)
	if a.Batch() != 1 {
		t.Fatalf("batch = %d after cold overload, want 1", a.Batch())
	}
	// Dead-band p99 (≥ Headroom×SLO) with pressure: without the signal
	// this holds at 1 forever; with it, one step per observation.
	for want := 2; want <= 10; want++ {
		a.Observe(ms(45), true)
		if a.Batch() != want {
			t.Fatalf("pressured climb stalled at %d, want %d", a.Batch(), want)
		}
	}
	// A real SLO breach still backs off and re-arms the ceiling.
	a.Observe(ms(80), true)
	if a.Batch() != 5 {
		t.Fatalf("batch = %d after breach under pressure, want 5", a.Batch())
	}
	// Pressure at Max is a no-op for the size.
	for i := 0; i < 64; i++ {
		a.Observe(ms(45), true)
	}
	if a.Batch() != 32 {
		t.Fatalf("batch = %d after sustained pressure, want Max 32", a.Batch())
	}
}

// TestAIMDBounds: the size never leaves [Min, Max] no matter the
// input, including zero and absurd latencies.
func TestAIMDBounds(t *testing.T) {
	a := NewAIMD(AIMDConfig{Min: 2, Max: 8, SLO: ms(20)})
	inputs := []time.Duration{0, ms(1), ms(1000), ms(19), ms(21), 0, ms(5), ms(500), ms(5)}
	for i := 0; i < 100; i++ {
		a.Observe(inputs[i%len(inputs)], i%3 == 0)
		if b := a.Batch(); b < 2 || b > 8 {
			t.Fatalf("batch %d left [2,8] after observation %d", b, i)
		}
		if w := a.Window(); w < 0 {
			t.Fatalf("negative window %v", w)
		}
	}
}

// TestAIMDWindowTracksBatch: the flush window grows monotonically with
// the batch size between its bounds.
func TestAIMDWindowTracksBatch(t *testing.T) {
	a := NewAIMD(AIMDConfig{Min: 1, Max: 16, SLO: ms(40), MinWindow: ms(0.1), MaxWindow: ms(4)})
	if w := a.Window(); w != ms(0.1) {
		t.Fatalf("window at Min = %v, want 100µs", w)
	}
	prev := a.Window()
	for i := 0; i < 15; i++ {
		a.Observe(ms(5), false)
		if w := a.Window(); w < prev {
			t.Fatalf("window shrank %v→%v while batch grew", prev, w)
		} else {
			prev = w
		}
	}
	if a.Batch() != 16 {
		t.Fatalf("batch = %d, want 16", a.Batch())
	}
	if w := a.Window(); w != ms(4) {
		t.Fatalf("window at Max = %v, want 4ms", w)
	}
}

// TestAIMDCeilingProbes: after an overload at size s, the controller
// must not blow straight past s-1 again; it sits at the ceiling for
// ProbeAfter healthy rounds before each single probe step.
func TestAIMDCeilingProbes(t *testing.T) {
	a := NewAIMD(AIMDConfig{Min: 1, Max: 32, SLO: ms(50), ProbeAfter: 4})
	// Ramp to 10, then overload: ceiling = 9, size halves to 5.
	drive(a, repeat(ms(10), 9))
	if a.Batch() != 10 {
		t.Fatalf("ramp reached %d, want 10", a.Batch())
	}
	a.Observe(ms(80), false)
	if a.Batch() != 5 {
		t.Fatalf("backoff to %d, want 5", a.Batch())
	}
	// Healthy rounds: climb 5→9, then exactly 4 more rounds at the
	// ceiling before the probe to 10.
	sizes := drive(a, repeat(ms(10), 4))
	if got := sizes[len(sizes)-1]; got != 9 {
		t.Fatalf("recovered to %d, want ceiling 9 (trajectory %v)", got, sizes)
	}
	sizes = drive(a, repeat(ms(10), 4))
	want := []int{9, 9, 9, 10}
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("probe trajectory %v, want %v", sizes, want)
		}
	}
}
