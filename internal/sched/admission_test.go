package sched

import (
	"testing"
	"time"
)

// TestControllerRequiresSLO: constructing a controller without an SLO
// is a programming error.
func TestControllerRequiresSLO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewController accepted a zero SLO")
		}
	}()
	NewController(Config{})
}

// TestAdmissionColdStart: before any service-time observation the
// controller admits everything — it has no basis for rejection.
func TestAdmissionColdStart(t *testing.T) {
	c := NewController(Config{SLO: 10 * time.Millisecond})
	for i := 0; i < 100; i++ {
		if _, ok := c.Admit(time.Microsecond, 8); !ok {
			t.Fatalf("cold controller rejected query %d", i)
		}
	}
	if got := c.Snapshot().Queued; got != 800 {
		t.Fatalf("queued = %d after 100×8 admissions, want 800", got)
	}
}

// TestAdmissionRejectsOverBudget: once the service-time EWMA is warm,
// queries whose delay estimate exceeds Safety×budget are refused, and
// refusals do not touch the queued account.
func TestAdmissionRejectsOverBudget(t *testing.T) {
	c := NewController(Config{SLO: 10 * time.Millisecond, Workers: 1})
	// 1ms per instance.
	c.ObserveBatch(8*time.Millisecond, 8)

	// Plenty of budget, empty queue: est ≈ window + 1ms → admitted.
	est, ok := c.Admit(10*time.Millisecond, 1)
	if !ok {
		t.Fatalf("rejected with empty queue (est %v)", est)
	}
	// Tiny budget: 1ms of work cannot fit in 0.8×500µs.
	est, ok = c.Admit(500*time.Microsecond, 1)
	if ok {
		t.Fatalf("admitted with est %v against 500µs budget", est)
	}
	if got := c.Snapshot().Queued; got != 1 {
		t.Fatalf("queued = %d, want 1 (rejection must not reserve)", got)
	}

	// Fill the queue until the backlog alone blows the full SLO.
	admitted := 1
	for {
		if _, ok := c.Admit(10*time.Millisecond, 1); !ok {
			break
		}
		admitted++
		if admitted > 10_000 {
			t.Fatal("admission never engaged despite unbounded backlog")
		}
	}
	// Backlog drains: capacity opens up again.
	c.Executed(int(c.Snapshot().Queued))
	if _, ok := c.Admit(10*time.Millisecond, 1); !ok {
		t.Fatal("rejected after the queue fully drained")
	}

	info := c.Snapshot()
	if info.Admitted != int64(admitted)+1 || info.Rejected != 2 {
		t.Fatalf("admitted=%d rejected=%d, want %d/2", info.Admitted, info.Rejected, admitted+1)
	}
	if r := info.AdmissionRate(); r <= 0 || r >= 1 {
		t.Fatalf("admission rate %v out of (0,1)", r)
	}
}

// TestAdmissionAccountsWorkers: the delay estimate divides the backlog
// across the worker pool, so more workers admit deeper queues.
func TestAdmissionAccountsWorkers(t *testing.T) {
	depth := func(workers int) int {
		c := NewController(Config{SLO: 10 * time.Millisecond, Workers: workers})
		c.ObserveBatch(time.Millisecond, 1) // 1ms per instance
		n := 0
		for {
			if _, ok := c.Admit(10*time.Millisecond, 1); !ok {
				return n
			}
			n++
			if n > 10_000 {
				t.Fatalf("admission never engaged with %d workers", workers)
			}
		}
	}
	d1, d4 := depth(1), depth(4)
	if d4 < 3*d1 {
		t.Fatalf("4-worker depth %d not ≈4× 1-worker depth %d", d4, d1)
	}
}

// TestCompleteStepsAIMD: completions below the SLO grow the batch once
// EvalEvery samples accumulate; overload completions shrink it.
func TestCompleteStepsAIMD(t *testing.T) {
	c := NewController(Config{SLO: 50 * time.Millisecond, EvalEvery: 8})
	if c.BatchSize() != 1 {
		t.Fatalf("initial batch = %d, want 1", c.BatchSize())
	}
	for i := 0; i < 32; i++ {
		c.Complete(5 * time.Millisecond)
	}
	if got := c.BatchSize(); got != 5 { // 32/8 = 4 AIMD steps from 1
		t.Fatalf("batch = %d after 4 healthy evals, want 5", got)
	}
	grown := c.BatchSize()
	for i := 0; i < 8; i++ {
		c.Complete(500 * time.Millisecond)
	}
	if got := c.BatchSize(); got >= grown {
		t.Fatalf("batch = %d after overload eval, want < %d", got, grown)
	}
	if w := c.Window(); w <= 0 {
		t.Fatalf("window = %v, want > 0", w)
	}
}

// TestInfoRoundTrip: the control verb's reply parses back into the
// same Info.
func TestInfoRoundTrip(t *testing.T) {
	in := Info{
		SLO:      60 * time.Millisecond,
		Priority: LatencyCritical,
		Batch:    17,
		Window:   750 * time.Microsecond,
		Admitted: 12345,
		Rejected: 678,
		Queued:   42,
		EstWait:  3*time.Millisecond + 250*time.Microsecond,
	}
	out, err := ParseInfo(in.String())
	if err != nil {
		t.Fatalf("ParseInfo(%q): %v", in.String(), err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v\nwire=%q", in, out, in.String())
	}
}

// TestParseInfoRejectsGarbage: malformed replies fail loudly instead
// of yielding half-parsed stats.
func TestParseInfoRejectsGarbage(t *testing.T) {
	bad := []string{
		"slo",                // no '='
		"batch=notanumber",   // bad int
		"slo=12parsecs",      // bad duration
		"priority=platinum",  // unknown class
		"batch=-4",           // negative
		"window=-1ms",        // negative duration
		"admitted=1 batch=x", // second field bad
	}
	for _, s := range bad {
		if _, err := ParseInfo(s); err == nil {
			t.Errorf("ParseInfo(%q) accepted garbage", s)
		}
	}
	// Unknown keys are forward-compatible, not errors.
	info, err := ParseInfo("batch=3 some_future_field=7")
	if err != nil || info.Batch != 3 {
		t.Fatalf("unknown key handling: info=%+v err=%v", info, err)
	}
}

// FuzzParseInfo: the "sched" control verb reply parser must never
// panic, and valid replies must survive a parse→render→parse cycle.
func FuzzParseInfo(f *testing.F) {
	f.Add(Info{}.String())
	f.Add(Info{
		SLO: 60 * time.Millisecond, Priority: Standard, Batch: 8,
		Window: time.Millisecond, Admitted: 100, Rejected: 7, Queued: 3,
		EstWait: 2 * time.Millisecond,
	}.String())
	f.Add("sched tiny")
	f.Add("slo=1h priority=throughput batch=64")
	f.Add("batch=9999999999999999999999")
	f.Add("=== = =")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		info, err := ParseInfo(s)
		if err != nil {
			return
		}
		again, err := ParseInfo(info.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", info.String(), s, err)
		}
		if again != info {
			t.Fatalf("parse→render→parse not stable: %+v vs %+v", info, again)
		}
	})
}
