// Package events is the fleet's structured event journal: a bounded
// in-memory ring every subsystem appends operational transitions to —
// router mark-down/recovery with cause, placement flips with their
// generation, autoscale decisions with the signal values that drove
// them, canary split changes, model load/evict, alert state changes.
//
// The journal answers the question the instantaneous counters cannot:
// *what happened, in what order, and why*. It is deliberately cheap
// (one mutex, fixed memory) so every subsystem can append
// unconditionally from its hot control paths, and every method is safe
// on a nil *Journal so wiring stays optional.
package events

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event for filtering and rendering.
type Kind string

// The event kinds the serving stack emits today. The set is open — the
// journal stores whatever Kind it is handed — but sticking to these
// keeps `tonic events` filters useful.
const (
	KindMarkDown  Kind = "markdown"  // router marked a replica down
	KindRecover   Kind = "recover"   // router recovered a replica
	KindPlacement Kind = "placement" // control plane flipped a shard map
	KindAutoscale Kind = "autoscale" // control plane changed an app's replica count
	KindCanary    Kind = "canary"    // traffic split set/promoted/rolled back
	KindModel     Kind = "model"     // model registered/loaded/evicted
	KindMember    Kind = "member"    // fleet membership change (join/leave/dead/revive)
	KindAlert     Kind = "alert"     // SLO burn-rate alert transition
	KindCache     Kind = "cache"     // gateway response-cache toggle/flush
	KindRateLimit Kind = "ratelimit" // gateway tenant entered rate limiting
)

// Event is one journal entry. Seq is assigned at append time and
// strictly increases, so readers can poll "everything since N" without
// missing or double-seeing entries even as the ring overwrites.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    Kind      `json:"kind"`
	Source  string    `json:"source"`
	Msg     string    `json:"msg"`
	TraceID string    `json:"trace_id,omitempty"`
}

// String renders the entry in the journal's line format:
//
//	#42 15:04:05.000 [router] markdown: replica-1 marked down ...
//
// `tonic events -follow` parses the leading #seq back out, so keep the
// prefix stable.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#%d %s [%s] %s: %s", e.Seq, e.Time.Format("15:04:05.000"), e.Source, e.Kind, e.Msg)
	if e.TraceID != "" {
		fmt.Fprintf(&sb, " (trace %s)", e.TraceID)
	}
	return sb.String()
}

// DefaultCapacity bounds a journal created by New(0).
const DefaultCapacity = 1024

// Journal is the bounded event ring. All methods are safe for
// concurrent use and on a nil receiver (appends become no-ops, reads
// return nothing), so subsystems hold a *Journal and never check.
type Journal struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // seq to assign to the next append; ring slot is (seq-1) % len
	now  func() time.Time
}

// New creates a journal holding at most capacity events (<= 0 means
// DefaultCapacity).
func New(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{ring: make([]Event, 0, capacity), now: time.Now}
}

// Append records one event with an empty trace ID.
func (j *Journal) Append(kind Kind, source, msg string) {
	j.AppendTraced(kind, source, "", msg)
}

// Appendf records one formatted event.
func (j *Journal) Appendf(kind Kind, source, format string, args ...any) {
	j.AppendTraced(kind, source, "", fmt.Sprintf(format, args...))
}

// AppendTraced records one event carrying the trace ID that was in
// scope when the transition happened (empty when untraced).
func (j *Journal) AppendTraced(kind Kind, source, traceID, msg string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.next++
	e := Event{Seq: j.next, Time: j.now(), Kind: kind, Source: source, Msg: msg, TraceID: traceID}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
	} else {
		j.ring[int((e.Seq-1)%uint64(cap(j.ring)))] = e
	}
	j.mu.Unlock()
}

// LastSeq returns the sequence number of the newest event (0 when
// empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Len returns how many events the ring currently holds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.ring)
}

// Recent returns the newest n events, oldest first (all of them when
// n <= 0 or exceeds the ring).
func (j *Journal) Recent(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	held := len(j.ring)
	if n <= 0 || n > held {
		n = held
	}
	return j.sliceLocked(j.next-uint64(n), n)
}

// Since returns every retained event with Seq > seq, oldest first. A
// reader that fell behind the ring simply gets the oldest retained
// events; compare the first returned Seq against its cursor to detect
// the gap.
func (j *Journal) Since(seq uint64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	held := uint64(len(j.ring))
	if seq >= j.next {
		return nil
	}
	oldest := j.next - held // seq of the oldest retained event, minus one
	if seq < oldest {
		seq = oldest
	}
	return j.sliceLocked(seq, int(j.next-seq))
}

// sliceLocked copies n events starting after sequence number `after`.
func (j *Journal) sliceLocked(after uint64, n int) []Event {
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		seq := after + uint64(i) + 1
		out = append(out, j.ring[int((seq-1)%uint64(cap(j.ring)))])
	}
	return out
}

// Filter returns the newest n events of the given kind, oldest first
// (n <= 0 means all retained).
func (j *Journal) Filter(kind Kind, n int) []Event {
	all := j.Recent(0)
	out := make([]Event, 0, len(all))
	for _, e := range all {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Control implements the "events" control verb:
//
//	events                  — the 20 newest events
//	events <n>              — the n newest events
//	events since <seq>      — everything after seq (the -follow poll)
//	events kind <kind> [n]  — newest n of one kind
func (j *Journal) Control(args []string) (string, error) {
	if j == nil {
		return "", fmt.Errorf("no event journal attached")
	}
	var evs []Event
	switch {
	case len(args) == 0:
		evs = j.Recent(20)
	case args[0] == "since":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: events since <seq>")
		}
		seq, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return "", fmt.Errorf("events since: bad sequence %q", args[1])
		}
		evs = j.Since(seq)
	case args[0] == "kind":
		if len(args) < 2 || len(args) > 3 {
			return "", fmt.Errorf("usage: events kind <kind> [n]")
		}
		n := 20
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v <= 0 {
				return "", fmt.Errorf("events kind: bad count %q", args[2])
			}
			n = v
		}
		evs = j.Filter(Kind(args[1]), n)
	default:
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return "", fmt.Errorf("usage: events [n] | events since <seq> | events kind <kind> [n]")
		}
		evs = j.Recent(n)
	}
	if len(evs) == 0 {
		return "(no events)", nil
	}
	lines := make([]string, len(evs))
	for i, e := range evs {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n"), nil
}
