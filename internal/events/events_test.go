package events

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAppendRecentOrder(t *testing.T) {
	j := New(8)
	for i := 1; i <= 3; i++ {
		j.Appendf(KindModel, "test", "event %d", i)
	}
	got := j.Recent(0)
	if len(got) != 3 {
		t.Fatalf("Recent(0) = %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, i+1)
		}
		if want := fmt.Sprintf("event %d", i+1); e.Msg != want {
			t.Errorf("event %d Msg = %q, want %q", i, e.Msg, want)
		}
	}
	if last := j.Recent(1); len(last) != 1 || last[0].Seq != 3 {
		t.Errorf("Recent(1) = %+v, want just seq 3", last)
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	j := New(4)
	for i := 1; i <= 10; i++ {
		j.Appendf(KindMarkDown, "test", "e%d", i)
	}
	got := j.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring held %d, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("slot %d Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if j.LastSeq() != 10 {
		t.Errorf("LastSeq = %d, want 10", j.LastSeq())
	}
}

func TestSinceCursor(t *testing.T) {
	j := New(4)
	for i := 1; i <= 6; i++ {
		j.Appendf(KindAlert, "test", "e%d", i)
	}
	// Cursor in range: everything after 4.
	got := j.Since(4)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Errorf("Since(4) = %+v, want seqs 5,6", got)
	}
	// Cursor caught up: nothing.
	if got := j.Since(6); len(got) != 0 {
		t.Errorf("Since(6) = %+v, want empty", got)
	}
	// Cursor fell behind the ring (events 1,2 overwritten): the oldest
	// retained event is 3, and the gap is visible from the first Seq.
	got = j.Since(0)
	if len(got) != 4 || got[0].Seq != 3 {
		t.Errorf("Since(0) = %+v, want seqs 3..6", got)
	}
}

func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	j.Append(KindModel, "x", "dropped")
	j.Appendf(KindModel, "x", "dropped %d", 1)
	j.AppendTraced(KindModel, "x", "tr", "dropped")
	if j.Recent(5) != nil || j.Since(0) != nil || j.LastSeq() != 0 || j.Len() != 0 {
		t.Error("nil journal leaked state")
	}
	if _, err := j.Control(nil); err == nil {
		t.Error("nil journal Control should error")
	}
}

func TestFilterByKind(t *testing.T) {
	j := New(16)
	j.Append(KindMarkDown, "router", "down")
	j.Append(KindRecover, "router", "up")
	j.Append(KindMarkDown, "router", "down again")
	got := j.Filter(KindMarkDown, 0)
	if len(got) != 2 {
		t.Fatalf("Filter(markdown) = %d events, want 2", len(got))
	}
	if got := j.Filter(KindMarkDown, 1); len(got) != 1 || got[0].Msg != "down again" {
		t.Errorf("Filter(markdown, 1) = %+v, want newest only", got)
	}
}

func TestEventStringAndTrace(t *testing.T) {
	j := New(4)
	j.now = func() time.Time { return time.Date(2026, 8, 8, 12, 30, 45, 120e6, time.UTC) }
	j.AppendTraced(KindMarkDown, "router", "tr-77", "replica-1 marked down for 250ms: 2 consecutive transport failures")
	s := j.Recent(1)[0].String()
	for _, want := range []string{"#1 ", "12:30:45.120", "[router]", "markdown:", "(trace tr-77)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered event %q missing %q", s, want)
		}
	}
}

func TestControlVerb(t *testing.T) {
	j := New(32)
	for i := 1; i <= 25; i++ {
		j.Appendf(KindAutoscale, "controlplane", "scale %d", i)
	}
	out, err := j.Control(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(out, "\n")); n != 20 {
		t.Errorf("bare events = %d lines, want 20", n)
	}
	out, err = j.Control([]string{"3"})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(out, "\n")); n != 3 {
		t.Errorf("events 3 = %d lines, want 3", n)
	}
	out, err = j.Control([]string{"since", "23"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "#24 ") {
		t.Errorf("events since 23 starts %q, want #24", out[:10])
	}
	out, err = j.Control([]string{"kind", "autoscale", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(out, "\n")); n != 2 {
		t.Errorf("events kind autoscale 2 = %d lines, want 2", n)
	}
	if out, err := j.Control([]string{"kind", "nosuch"}); err != nil || out != "(no events)" {
		t.Errorf("events kind nosuch = %q, %v; want (no events)", out, err)
	}
	for _, bad := range [][]string{{"0"}, {"-3"}, {"junk"}, {"since"}, {"since", "x"}, {"kind"}, {"kind", "a", "b", "c"}, {"kind", "a", "nan"}} {
		if _, err := j.Control(bad); err == nil {
			t.Errorf("Control(%v) should error", bad)
		}
	}
}

// TestConcurrentAppendersVsReaders is the journal's -race contract:
// parallel appenders from multiple "subsystems" against snapshot
// readers polling Recent/Since, with invariants checked on every read
// (sequence numbers strictly increase, no torn events).
func TestConcurrentAppendersVsReaders(t *testing.T) {
	j := New(64)
	const appenders = 4
	const perAppender = 500
	var stop atomic.Bool
	var wg sync.WaitGroup

	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			src := fmt.Sprintf("sub-%d", a)
			for i := 0; i < perAppender; i++ {
				j.AppendTraced(KindMarkDown, src, fmt.Sprintf("tr-%d-%d", a, i), fmt.Sprintf("msg %d", i))
			}
		}(a)
	}

	readErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			for !stop.Load() {
				for _, batch := range [][]Event{j.Recent(16), j.Since(cursor)} {
					var last uint64
					for _, e := range batch {
						if e.Seq == 0 || e.Msg == "" || e.Source == "" {
							readErr <- fmt.Errorf("torn event: %+v", e)
							return
						}
						if last != 0 && e.Seq != last+1 {
							readErr <- fmt.Errorf("non-contiguous seqs: %d then %d", last, e.Seq)
							return
						}
						last = e.Seq
					}
					if len(batch) > 0 {
						cursor = batch[len(batch)-1].Seq
					}
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let appenders finish, then release the readers.
	for j.LastSeq() < appenders*perAppender {
		select {
		case err := <-readErr:
			t.Fatal(err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	stop.Store(true)
	<-done
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if j.LastSeq() != appenders*perAppender {
		t.Errorf("LastSeq = %d, want %d", j.LastSeq(), appenders*perAppender)
	}
}
