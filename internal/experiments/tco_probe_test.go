package experiments

import "testing"

// TestTCOProbe prints Figure 15/16 headline numbers for calibration;
// run with -v when tuning.
func TestTCOProbe(t *testing.T) {
	p := DefaultPlatform()
	for _, mix := range MixNames {
		pts := p.Fig15(mix)
		t.Logf("%s:", mix)
		for _, pt := range pts {
			t.Logf("  dnn=%.2f  integrated=%.3f  disagg=%.3f  (improvement int=%.1fx dis=%.1fx)",
				pt.DNNFrac, pt.Integrated, pt.Disagg, 1/pt.Integrated, 1/pt.Disagg)
		}
	}
	for _, mix := range []string{"MIXED", "NLP"} {
		t.Logf("Fig16 %s:", mix)
		for _, pt := range p.Fig16(mix) {
			t.Logf("  %-16s perf=%.2fx  cpu=%.2f int=%.2f dis=%.2f",
				pt.Link, pt.PerfScale, pt.CPUOnly.Total(), pt.Integrated.Total(), pt.Disagg.Total())
		}
	}
}
