package experiments

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"djinn/internal/gateway"
	"djinn/internal/models"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/tonic"
	"djinn/internal/trace"
	"djinn/internal/workload"
)

// The gateway experiment measures what the HTTP/JSON tier adds on top
// of the raw DJRT fleet: (a) the content-addressed response cache
// serving a repeating NLP query population at a large multiple of the
// uncached rate, and (b) the server-side ASR→POS→NER pipeline beating
// three sequential client round-trips — the POS and NER stages share
// the transcript server-side and run concurrently, so the composite
// pays one HTTP exchange and two batch windows instead of three each.

// GatewayOptions sizes the experiment; RenderGateway uses the
// defaults, the acceptance test shrinks them.
type GatewayOptions struct {
	Replicas int
	// Part (a): cache study on POS.
	Sentences   int           // distinct sentences in the repeating population
	Rate        float64       // offered load per arm (open loop, q/s)
	Drive       time.Duration // per-arm drive length
	MaxInflight int
	// Part (b): pipeline study.
	AudioSeconds float64 // utterance length per iteration
	Iterations   int
}

// GatewayResult is the measured outcome.
type GatewayResult struct {
	Uncached workload.DriveResult
	Cached   workload.DriveResult
	Speedup  float64 // cached QPS / uncached QPS
	Cache    gateway.CacheStats

	SeqP50  time.Duration // three sequential round-trips
	SeqP95  time.Duration
	PipeP50 time.Duration // one /v1/pipeline request
	PipeP95 time.Duration
	// MedianDelta is the median of per-iteration (sequential −
	// pipeline) gaps. The same utterance runs through both arms each
	// iteration, so pairing cancels the ASR forward's run-to-run
	// variance, which on a loaded host can exceed the structural win.
	MedianDelta time.Duration
	StageSpans  int    // "stage:" spans in the merged trace (want 3)
	Merged      string // one merged cross-tier trace, formatted
}

// gatewayFleet is an in-process fleet behind a router behind the
// gateway, serving HTTP on a loopback listener.
type gatewayFleet struct {
	gw      *gateway.Gateway
	rt      *router.Router
	servers []*service.Server
	stores  []*trace.Store
	hsrv    *http.Server
	url     string
	client  *http.Client
}

func newGatewayFleet(replicas int, apps []models.App) (*gatewayFleet, error) {
	f := &gatewayFleet{
		rt: router.New(router.Config{Policy: router.LeastOutstanding}),
	}
	f.stores = append(f.stores, f.rt.TraceStore())
	for i := 0; i < replicas; i++ {
		srv := service.NewServer()
		srv.SetLogger(func(string, ...any) {})
		st := trace.NewStore(fmt.Sprintf("replica-%d", i), 0)
		srv.SetTraceStore(st)
		for _, a := range apps {
			if err := tonic.Register(srv, a); err != nil {
				return nil, err
			}
		}
		if err := f.rt.AddBackend(fmt.Sprintf("replica-%d", i), srv); err != nil {
			return nil, err
		}
		f.servers = append(f.servers, srv)
		f.stores = append(f.stores, st)
	}
	gw, err := gateway.New(gateway.Config{Backend: f.rt})
	if err != nil {
		return nil, err
	}
	f.gw = gw
	f.stores = append([]*trace.Store{gw.Traces()}, f.stores...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	f.hsrv = &http.Server{Handler: gw}
	go f.hsrv.Serve(ln)
	f.url = "http://" + ln.Addr().String()
	f.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	return f, nil
}

func (f *gatewayFleet) close() {
	f.client.CloseIdleConnections()
	f.hsrv.Close()
	f.rt.Close()
	for _, srv := range f.servers {
		srv.Close()
	}
}

// post sends one JSON request and decodes the response envelope.
func (f *gatewayFleet) post(path string, body map[string]any) (map[string]json.RawMessage, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Post(f.url+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(out, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// audioBody synthesises one base64 PCM16 utterance field.
func audioBody(rng *tensor.RNG, seconds float64) string {
	return base64.StdEncoding.EncodeToString(gateway.EncodePCM16(workload.Utterance(rng, seconds)))
}

// RunGateway executes both parts against one fleet.
func RunGateway(opts GatewayOptions) (*GatewayResult, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	fleet, err := newGatewayFleet(opts.Replicas, []models.App{models.ASR, models.POS, models.NER})
	if err != nil {
		return nil, err
	}
	defer fleet.close()
	res := &GatewayResult{}

	// Part (a): the same repeating sentence population offered far
	// above the engine's capacity, once with the cache bypassed and
	// once through it. The inflight bound turns the open loop into a
	// capacity measurement: arrivals queue behind the semaphore, so
	// measured QPS is what each path can actually sustain.
	sentences := make([]string, opts.Sentences)
	rng := tensor.NewRNG(11)
	for i := range sentences {
		sentences[i] = workload.Sentence(rng, workload.SentenceWords)
	}
	arm := func(noCache bool) workload.DriveResult {
		i := 0
		return workload.DriveHTTP(workload.HTTPOptions{
			URL:    fleet.url + "/v1/infer",
			Bodies: len(sentences),
			Body: func(*tensor.RNG) []byte {
				body := map[string]any{"app": "pos", "text": sentences[i%len(sentences)]}
				if noCache {
					body["no_cache"] = true
				}
				i++
				raw, _ := json.Marshal(body)
				return raw
			},
			Rate:        opts.Rate,
			MaxInflight: opts.MaxInflight,
			Duration:    opts.Drive,
		})
	}
	res.Uncached = arm(true)
	res.Cached = arm(false)
	if res.Uncached.QPS > 0 {
		res.Speedup = res.Cached.QPS / res.Uncached.QPS
	}
	res.Cache = fleet.gw.Stats().Cache

	// Part (b): the composite speech query, both ways, fresh audio
	// per iteration so no response cache is involved in either arm.
	seqLat := make([]time.Duration, 0, opts.Iterations)
	pipeLat := make([]time.Duration, 0, opts.Iterations)
	audioRNG := tensor.NewRNG(23)
	stages := []map[string]any{
		{"name": "asr", "app": "asr"},
		{"name": "pos", "app": "pos", "after": []string{"asr"}},
		{"name": "ner", "app": "ner", "after": []string{"asr"}},
	}
	var lastTraceID string
	for n := 0; n < opts.Iterations+1; n++ {
		audio := audioBody(audioRNG, opts.AudioSeconds)
		warm := n == 0 // first iteration warms plan pools and HTTP conns

		t0 := time.Now()
		m, err := fleet.post("/v1/infer", map[string]any{"app": "asr", "audio": audio, "no_cache": true})
		if err != nil {
			return nil, fmt.Errorf("sequential asr: %w", err)
		}
		var val struct {
			Text string `json:"text"`
		}
		if err := json.Unmarshal(m["result"], &val); err != nil {
			return nil, err
		}
		text := val.Text
		if text == "" {
			text = "silence" // synthetic audio can decode to nothing
		}
		for _, app := range []string{"pos", "ner"} {
			if _, err := fleet.post("/v1/infer", map[string]any{"app": app, "text": text, "no_cache": true}); err != nil {
				return nil, fmt.Errorf("sequential %s: %w", app, err)
			}
		}
		seq := time.Since(t0)

		t0 = time.Now()
		m, err = fleet.post("/v1/pipeline", map[string]any{"stages": stages, "audio": audio})
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		pipe := time.Since(t0)
		json.Unmarshal(m["trace_id"], &lastTraceID)
		if !warm {
			seqLat = append(seqLat, seq)
			pipeLat = append(pipeLat, pipe)
		}
	}
	res.SeqP50, res.SeqP95 = percentiles(seqLat)
	res.PipeP50, res.PipeP95 = percentiles(pipeLat)
	deltas := make([]time.Duration, len(seqLat))
	for i := range seqLat {
		deltas[i] = seqLat[i] - pipeLat[i]
	}
	res.MedianDelta, _ = percentiles(deltas)

	if merged, ok := trace.Merge(lastTraceID, fleet.stores...); ok {
		res.Merged = merged.Format()
		for _, sp := range merged.Spans {
			// Merge prefixes span names with their source tier
			// ("gateway/stage:asr"), so match anywhere in the name.
			if strings.Contains(sp.Name, "stage:") {
				res.StageSpans++
			}
		}
	}
	return res, nil
}

func percentiles(lats []time.Duration) (p50, p95 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2], s[(len(s)*95)/100]
}

// RenderGateway runs the full-size experiment and renders it.
func RenderGateway() string {
	opts := GatewayOptions{
		Replicas:     3,
		Sentences:    16,
		Rate:         30000,
		Drive:        2 * time.Second,
		MaxInflight:  4,
		AudioSeconds: 0.25,
		Iterations:   9,
	}
	res, err := RunGateway(opts)
	if err != nil {
		return fmt.Sprintf("gateway experiment failed: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Gateway tier: HTTP/JSON front end over a %d-replica fleet\n\n", opts.Replicas)
	fmt.Fprintf(&b, "Part (a): content-addressed response cache, %d repeating POS sentences, %v per arm\n",
		opts.Sentences, opts.Drive)
	t := &table{header: []string{"arm", "qps", "p50", "p99", "served"}}
	t.add("uncached", fmt.Sprintf("%.0f", res.Uncached.QPS),
		res.Uncached.Latency.P50.Round(time.Microsecond).String(),
		res.Uncached.Latency.P99.Round(time.Microsecond).String(),
		fmt.Sprintf("%d", res.Uncached.Queries))
	t.add("cached", fmt.Sprintf("%.0f", res.Cached.QPS),
		res.Cached.Latency.P50.Round(time.Microsecond).String(),
		res.Cached.Latency.P99.Round(time.Microsecond).String(),
		fmt.Sprintf("%d", res.Cached.Queries))
	b.WriteString(t.String())
	hitRate := 0.0
	if res.Cache.Hits+res.Cache.Misses > 0 {
		hitRate = 100 * float64(res.Cache.Hits) / float64(res.Cache.Hits+res.Cache.Misses)
	}
	fmt.Fprintf(&b, "\ncache speedup: %.1fx (hit rate %.1f%%, %d entries, %d fills, %d bytes)\n",
		res.Speedup, hitRate, res.Cache.Entries, res.Cache.Fills, res.Cache.Bytes)

	fmt.Fprintf(&b, "\nPart (b): ASR→POS→NER composite, %.2fs utterances, %d iterations\n",
		opts.AudioSeconds, opts.Iterations)
	t2 := &table{header: []string{"arm", "p50", "p95"}}
	t2.add("3 round-trips", res.SeqP50.Round(time.Millisecond).String(), res.SeqP95.Round(time.Millisecond).String())
	t2.add("/v1/pipeline", res.PipeP50.Round(time.Millisecond).String(), res.PipeP95.Round(time.Millisecond).String())
	b.WriteString(t2.String())
	fmt.Fprintf(&b, "\npipeline wins by %v median per-utterance (one HTTP exchange, POS∥NER off the shared transcript)\n",
		res.MedianDelta.Round(time.Millisecond))
	fmt.Fprintf(&b, "\nmerged trace (%d stage spans across gateway/router/replica tiers):\n%s", res.StageSpans, res.Merged)
	return b.String()
}
