package experiments

import (
	"djinn/internal/models"
	"djinn/internal/wsc"
)

// Extension experiment: energy per query. The paper measures wall power
// for its TCO inputs; this derives the per-query energy comparison that
// follows from the same numbers — the efficiency argument behind the
// 4-20× TCO result, at query granularity.
type EnergyRow struct {
	App         models.App
	CPUJoules   float64 // one query on a Xeon core (with its server share)
	GPUJoules   float64 // one query's share of an optimised GPU
	Improvement float64
}

// Energy computes per-query energy on both platforms. The CPU side
// charges a core its 1/12 share of the 300W beefy server; the GPU side
// charges a K40 its 240W board power plus a 1/8 host share, divided by
// the optimised Figure 10 throughput.
func (p Platform) Energy() []EnergyRow {
	cf := wsc.Table4()
	corePower := cf.GPUCapableServerWatts / wsc.CoresPerBeefyServer
	gpuPower := cf.GPUWatts + cf.GPUCapableServerWatts/8
	var rows []EnergyRow
	for _, app := range models.Apps {
		cpuJ := corePower * p.CPUDNNTime(app)
		qps := p.ServerQPS(app, 1, OptimalMPSProcs, true, true).QPS
		gpuJ := gpuPower / qps
		rows = append(rows, EnergyRow{
			App: app, CPUJoules: cpuJ, GPUJoules: gpuJ, Improvement: cpuJ / gpuJ,
		})
	}
	return rows
}

// RenderEnergy prints the energy study.
func (p Platform) RenderEnergy() string {
	t := &table{header: []string{"app", "CPU J/query", "GPU J/query", "improvement"}}
	for _, r := range p.Energy() {
		t.add(r.App.String(), fmt4(r.CPUJoules), fmt4(r.GPUJoules), f1(r.Improvement))
	}
	return "Extension: energy per query, Xeon core (with server share) vs optimised K40\n" + t.String()
}

func fmt4(v float64) string {
	switch {
	case v >= 1:
		return f2(v)
	case v >= 1e-3:
		return f2(v*1e3) + "m"
	default:
		return f2(v*1e6) + "u"
	}
}
