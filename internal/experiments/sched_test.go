package experiments

import (
	"testing"
	"time"

	"djinn/internal/service"
)

// TestSchedSweepSmoke runs a miniature scheduler sweep — one replica,
// two configs, two rates, short drives — and checks the cells are
// internally consistent. It deliberately avoids asserting on absolute
// latency: CI machines are noisy; the full matrix is `-exp sched`.
func TestSchedSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live load for ~2s")
	}
	const slo = 250 * time.Millisecond
	cfgs := []SchedConfig{
		{"static-1", service.AppConfig{BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1}},
		{"adaptive", service.AppConfig{BatchInstances: 16, Workers: 1, SLO: slo}},
	}
	rates := []float64{60, 120}
	cells := SchedSweep(cfgs, SchedSweepOptions{
		Replicas:    1,
		SLO:         slo,
		Deadline:    slo + slo/5,
		Rates:       rates,
		Warmup:      150 * time.Millisecond,
		Measure:     400 * time.Millisecond,
		MaxInflight: 64,
		Fixed:       2 * time.Millisecond,
		Per:         200 * time.Microsecond,
	})
	if len(cells) != len(cfgs)*len(rates) {
		t.Fatalf("got %d cells, want %d", len(cells), len(cfgs)*len(rates))
	}
	for _, c := range cells {
		if c.Skipped {
			continue
		}
		if c.Res.Issued() != c.Res.Queries+c.Res.Errors+c.Res.Shed+c.Res.Expired {
			t.Errorf("%s@%.0f: Issued() inconsistent: %+v", c.Config, c.Rate, c.Res)
		}
		if c.Res.Queries == 0 {
			t.Errorf("%s@%.0f: served nothing", c.Config, c.Rate)
		}
		if att := c.Res.SLOAttainment(); att < 0 || att > 1 {
			t.Errorf("%s@%.0f: attainment %v out of range", c.Config, c.Rate, att)
		}
		switch c.Config {
		case "adaptive":
			if c.Batch < 1 || c.Batch > 16 {
				t.Errorf("adaptive@%.0f: live batch %d outside [1,16]", c.Rate, c.Batch)
			}
			if c.Window <= 0 {
				t.Errorf("adaptive@%.0f: live window %v", c.Rate, c.Window)
			}
		case "static-1":
			if c.Batch != 0 {
				t.Errorf("static-1@%.0f: reported live batch %d, want 0", c.Rate, c.Batch)
			}
		}
	}
	// Both configs have ample capacity at these rates (2.2ms/query vs
	// 60–120 q/s offered) and a generous SLO; each should sustain the
	// low rate even on a loaded CI box.
	for _, c := range cells {
		if c.Rate == rates[0] && !c.Sustainable {
			t.Errorf("%s@%.0f not sustainable: p99=%v res=%+v", c.Config, c.Rate, c.Res.Latency.P99, c.Res)
		}
	}
}

// TestSchedSweepCutsLadderAfterCliff overloads a 1-replica static-1
// fleet (service time 10ms/query ⇒ ~100 q/s capacity) far past
// capacity and checks the ladder is cut after two consecutive
// unsustainable rates.
func TestSchedSweepCutsLadderAfterCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live load for ~2s")
	}
	cfgs := []SchedConfig{
		{"static-1", service.AppConfig{BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1}},
	}
	cells := SchedSweep(cfgs, SchedSweepOptions{
		Replicas:    1,
		SLO:         30 * time.Millisecond,
		Rates:       []float64{600, 900, 1200},
		Warmup:      100 * time.Millisecond,
		Measure:     300 * time.Millisecond,
		MaxInflight: 64,
		Fixed:       10 * time.Millisecond,
		Per:         time.Millisecond,
	})
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for i, c := range cells[:2] {
		if c.Skipped {
			t.Fatalf("cell %d skipped before two failures observed", i)
		}
		if c.Sustainable {
			t.Errorf("static-1@%.0f sustainable at 6x capacity: %+v", c.Rate, c.Res)
		}
	}
	if !cells[2].Skipped {
		t.Error("third rung not skipped after two consecutive failures")
	}
	// 6x overload with a deadline: the lost queries must show up as
	// shed or expired, and there must be many of them.
	lost := cells[0].Res.Shed + cells[0].Res.Expired
	if lost == 0 {
		t.Errorf("overloaded cell lost nothing: %+v", cells[0].Res)
	}
}
