package experiments

import (
	"fmt"

	"djinn/internal/cluster"
	"djinn/internal/gpusim"
	"djinn/internal/models"
	"djinn/internal/workload"
	"djinn/internal/wsc"
)

// Extension experiment: end-to-end query latency composition through
// the Integrated and Disaggregated designs (Figure 14's red and blue
// arrows, measured). The TCO study says what each design costs; this
// says what a query experiences in each — in particular, the fabric
// hop the Disaggregated design adds.
type ClusterRow struct {
	App    models.App
	Design cluster.Design
	Result cluster.Result
}

// Cluster simulates both designs serving one application at 50% of the
// GPU tier's capacity.
func (p Platform) Cluster(app models.App) []ClusterRow {
	spec := workload.Get(app)
	link := wsc.Table6()[0]
	perGPU := p.ServerQPS(app, 1, OptimalMPSProcs, true, false).QPS
	const gpuServers, gpusPerSrv = 2, 4
	capacity := float64(gpuServers*gpusPerSrv) * perGPU
	if c := float64(gpuServers) * link.NetBW / spec.WireBytes(); c < capacity {
		capacity = c
	}
	pre := p.CPU.ScalarTime(spec.PreOps)
	post := p.CPU.ScalarTime(spec.PostOps)
	// Size the CPU tier for ~60% utilisation at the offered load, as an
	// operator would (NLP's pre/post demand far exceeds its GPU tier's).
	cpuServers := int(capacity*0.5*(pre+post)/(wsc.CoresPerBeefyServer*0.6)) + 1
	base := cluster.Config{
		CPUServers:   cpuServers,
		CPUCores:     int(wsc.CoresPerBeefyServer),
		PreSeconds:   pre,
		PostSeconds:  post,
		GPUServers:   gpuServers,
		GPUsPerSrv:   gpusPerSrv,
		ProcsPerGPU:  OptimalMPSProcs,
		Device:       p.GPU,
		BatchQueries: spec.BatchSize,
		BatchWindow:  2e-3,
		BatchKernels: func(n int) []gpusim.KernelWork { return p.GPU.Lower(spec.Kernels(n)) },
		WireBytes:    spec.WireBytes(),
		NetBW:        link.NetBW,
		LinkBW:       link.LinkBW,
		ArrivalRate:  capacity * 0.5,
		Seed:         uint64(app) + 5,
	}
	horizon := 100000 / base.ArrivalRate
	if horizon < 0.5 {
		horizon = 0.5
	}
	if horizon > 20 {
		horizon = 20
	}
	var rows []ClusterRow
	for _, d := range []cluster.Design{cluster.Integrated, cluster.Disaggregated} {
		cfg := base
		cfg.Design = d
		rows = append(rows, ClusterRow{App: app, Design: d, Result: cluster.Simulate(cfg, horizon)})
	}
	return rows
}

// RenderCluster prints the latency composition study.
func (p Platform) RenderCluster() string {
	out := "Extension: end-to-end latency composition, Integrated vs Disaggregated (50% load)\n"
	t := &table{header: []string{"app", "design", "QPS", "mean ms", "pre", "fabric", "DNN", "post", "p95 ms"}}
	for _, app := range []models.App{models.POS, models.IMC, models.DIG} {
		for _, r := range p.Cluster(app) {
			res := r.Result
			t.add(app.String(), r.Design.String(), f1(res.QPS),
				f3(res.MeanLat*1e3), f3(res.MeanPre*1e3), f3(res.MeanNet*1e3),
				f3(res.MeanDNN*1e3), f3(res.MeanPost*1e3), f3(res.P95Lat*1e3))
		}
	}
	out += t.String()
	out += fmt.Sprintln("\n(fabric = the Disaggregated design's NIC-team hop; zero for Integrated)")
	return out
}
