package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestGatewayAcceptance runs a shrunk gateway experiment and checks
// the PR's acceptance bars: the response cache serves repeated NLP
// queries at ≥5× the uncached rate, and the server-side pipeline
// beats three sequential round-trips at p50 with one merged trace
// showing all three stages.
func TestGatewayAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("gateway experiment is seconds-long; skipped in -short")
	}
	res, err := RunGateway(GatewayOptions{
		Replicas:     2,
		Sentences:    8,
		Rate:         20000,
		Drive:        1500 * time.Millisecond,
		MaxInflight:  4,
		AudioSeconds: 0.1,
		Iterations:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Uncached.Queries == 0 || res.Cached.Queries == 0 {
		t.Fatalf("empty arm: uncached=%d cached=%d", res.Uncached.Queries, res.Cached.Queries)
	}
	if res.Speedup < 5 {
		t.Errorf("cache speedup = %.1fx, want >= 5x (uncached %.0f qps, cached %.0f qps)",
			res.Speedup, res.Uncached.QPS, res.Cached.QPS)
	}
	if res.Cache.Hits == 0 {
		t.Error("cache recorded zero hits")
	}
	// Paired comparison: the same utterance runs through both arms, so
	// the median per-iteration gap isolates the structural win (one
	// HTTP exchange and overlapped POS/NER) from ASR forward noise.
	if res.MedianDelta <= 0 {
		t.Errorf("pipeline not faster: median (sequential-pipeline) delta %v (p50 seq=%v pipe=%v)",
			res.MedianDelta, res.SeqP50, res.PipeP50)
	}
	if res.StageSpans != 3 {
		t.Errorf("merged trace has %d stage spans, want 3:\n%s", res.StageSpans, res.Merged)
	}
	for _, stage := range []string{"stage:asr", "stage:pos", "stage:ner"} {
		if !strings.Contains(res.Merged, stage) {
			t.Errorf("merged trace missing %s:\n%s", stage, res.Merged)
		}
	}
}
