package experiments

import (
	"fmt"
	"time"

	"djinn/internal/cluster"
	"djinn/internal/gpusim"
	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/workload"
	"djinn/internal/wsc"
)

// RouterSweepRow is one cell of the measured router sweep: one routing
// policy driving one replica count.
type RouterSweepRow struct {
	Policy   router.Policy
	Replicas int
	Res      workload.DriveResult
	Backends []router.BackendSnapshot
}

// benchPace is the modelled accelerator-side service time per query
// instance in the router sweep. The pure-Go forward pass stands in for
// the GPU everywhere else in this repo, but on a small host every
// replica shares the same cores, so a compute-bound sweep would measure
// the host's core count instead of the dispatch tier. Pacing the
// forward pass at a fixed per-instance service time (a sleep, like the
// device time gpusim charges per batch instance) makes each replica a
// genuine unit of serving capacity regardless of host parallelism.
const benchPace = time.Millisecond

// pacedLayer charges benchPace per batch instance, then passes its
// input through unchanged. It slots into an nn.Net between real layers
// so the service still exercises its full batch/forward/respond path.
type pacedLayer struct{}

func (pacedLayer) Name() string                                            { return "paced" }
func (pacedLayer) Kind() string                                            { return "paced" }
func (pacedLayer) OutShape(in []int) ([]int, error)                        { return in, nil }
func (pacedLayer) Params() []*nn.Param                                     { return nil }
func (pacedLayer) Kernels(in []int, batch int, ks []nn.Kernel) []nn.Kernel { return ks }
func (pacedLayer) Forward(ctx *nn.Ctx, in, out *tensor.Tensor) {
	time.Sleep(time.Duration(in.Shape()[0]) * benchPace)
	copy(out.Data(), in.Data())
}

// benchNet is the router sweep's model: a small FC stack with a paced
// stage, identical weights on every replica.
func benchNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("router-bench", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(pacedLayer{}).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// RouterSweep drives the real in-process service through the
// multi-backend router: for each replica count × policy it boots a
// fleet of DjiNN servers running the paced bench model, fans a
// closed-loop workload across them, and reports the drive result plus
// the per-backend routing counters. With one single-worker replica the
// fleet serves ~1/benchPace queries per second; each added replica adds
// that much capacity, so throughput scaling with replica count is the
// sweep's expected signature (until the closed-loop client pool stops
// saturating the fleet). This is the measured half of the dispatch-tier
// study; the cluster simulation mirrors the same policies for the
// modelled half.
func RouterSweep(replicaCounts []int, policies []router.Policy, workers int, per time.Duration) []RouterSweepRow {
	var rows []RouterSweepRow
	for _, n := range replicaCounts {
		for _, pol := range policies {
			rt := router.New(router.Config{Policy: pol})
			servers := make([]*service.Server, 0, n)
			for i := 0; i < n; i++ {
				srv := service.NewServer()
				srv.SetLogger(func(string, ...any) {})
				if err := srv.Register("bench", benchNet(1), service.AppConfig{
					BatchInstances: 2,
					BatchWindow:    2 * time.Millisecond,
					Workers:        1,
				}); err != nil {
					panic(err)
				}
				servers = append(servers, srv)
				if err := rt.AddBackend(fmt.Sprintf("replica-%d", i), srv); err != nil {
					panic(err)
				}
			}
			res := workload.DriveClosedLoopPayload(rt, "bench", func(rng *tensor.RNG) []float32 {
				in := make([]float32, 8)
				rng.FillNorm(in, 0, 0.5)
				return in
			}, workers, per, 0)
			rows = append(rows, RouterSweepRow{Policy: pol, Replicas: n, Res: res, Backends: rt.Stats()})
			rt.Close()
			for _, srv := range servers {
				srv.Close()
			}
		}
	}
	return rows
}

// spread summarises how evenly a policy spread attempts across the
// fleet: min/max per-backend attempts.
func spread(backends []router.BackendSnapshot) string {
	if len(backends) == 0 {
		return "-"
	}
	lo, hi := backends[0].Stats.Sent, backends[0].Stats.Sent
	for _, b := range backends[1:] {
		if b.Stats.Sent < lo {
			lo = b.Stats.Sent
		}
		if b.Stats.Sent > hi {
			hi = b.Stats.Sent
		}
	}
	return fmt.Sprintf("%d/%d", lo, hi)
}

// RenderRouter prints the dispatch-tier study: the measured sweep
// (replica count × policy on the live service) and the cluster
// simulation running the identical policies over its GPU tier.
func (p Platform) RenderRouter() string {
	out := "Extension: multi-backend router — replica count x policy (paced bench model, closed loop)\n"
	rows := RouterSweep([]int{1, 2, 4}, router.Policies, 8, 250*time.Millisecond)
	t := &table{header: []string{"policy", "replicas", "QPS", "ok", "shed", "p50", "p95", "sent min/max"}}
	for _, r := range rows {
		t.add(r.Policy.String(), fmt.Sprint(r.Replicas), f1(r.Res.QPS),
			fmt.Sprint(r.Res.Queries), fmt.Sprint(r.Res.Shed),
			r.Res.Latency.P50.Round(10*time.Microsecond).String(),
			r.Res.Latency.P95.Round(10*time.Microsecond).String(),
			spread(r.Backends))
	}
	out += t.String()
	out += "(throughput scales with replica count until the drive's 8 closed-loop\n" +
		" clients stop saturating the fleet; sent min/max shows each policy's spread)\n\n"

	out += "Simulated mirror: the same policies dispatching the cluster sim's GPU tier\n"
	st := &table{header: []string{"policy", "QPS", "mean ms", "assembly wait ms", "p95 ms"}}
	for _, pol := range router.Policies {
		cfg := p.routerSimConfig()
		cfg.Policy = pol
		res := cluster.Simulate(cfg, 2.0)
		st.add(pol.String(), f1(res.QPS), f3(res.MeanLat*1e3), f3(res.MeanWait*1e3), f3(res.P95Lat*1e3))
	}
	out += st.String()
	out += "(measured and simulated dispatch share one policy implementation contract;\n" +
		" on a homogeneous tier the load-aware policies match round-robin, and they\n" +
		" pull ahead once replicas differ — kill one in the live fleet and the router\n" +
		" marks it down and retries within each query's deadline budget)\n"
	return out
}

// routerSimConfig is the fixed cluster configuration the policy mirror
// runs: the DIG workload shape on a two-server Integrated GPU tier,
// loaded to half capacity, provisioned exactly like the Cluster
// experiment.
func (p Platform) routerSimConfig() cluster.Config {
	spec := workload.Get(models.DIG)
	link := wsc.Table6()[0]
	perGPU := p.ServerQPS(models.DIG, 1, OptimalMPSProcs, true, false).QPS
	const gpuServers, gpusPerSrv = 2, 4
	capacity := float64(gpuServers*gpusPerSrv) * perGPU
	pre := p.CPU.ScalarTime(spec.PreOps)
	post := p.CPU.ScalarTime(spec.PostOps)
	cpuServers := int(capacity*0.5*(pre+post)/(wsc.CoresPerBeefyServer*0.6)) + 1
	return cluster.Config{
		Design:       cluster.Integrated,
		CPUServers:   cpuServers,
		CPUCores:     int(wsc.CoresPerBeefyServer),
		PreSeconds:   pre,
		PostSeconds:  post,
		GPUServers:   gpuServers,
		GPUsPerSrv:   gpusPerSrv,
		ProcsPerGPU:  OptimalMPSProcs,
		Device:       p.GPU,
		BatchQueries: spec.BatchSize,
		BatchWindow:  2e-3,
		BatchKernels: func(n int) []gpusim.KernelWork { return p.GPU.Lower(spec.Kernels(n)) },
		WireBytes:    spec.WireBytes(),
		NetBW:        link.NetBW,
		LinkBW:       link.LinkBW,
		ArrivalRate:  capacity * 0.5,
		Seed:         7,
	}
}
