package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"djinn/internal/alerts"
	"djinn/internal/controlplane"
	"djinn/internal/events"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/timeseries"
	"djinn/internal/workload"
)

// The obsfleet experiment closes the observability loop the fleet
// grew this PR: a replica kill mid-load must surface as a journaled
// mark-down, drive the SLO burn-rate alert through pending → firing
// while the kill window is still open, and resolve after the control
// plane re-places the app — with the collector's merged-histogram
// fleet p99 shown against the average-of-replica-p99s it replaces,
// and the whole instrumentation plane costing under 2% of the run.

// ObsFleetResult summarises one observed kill-mid-load run.
type ObsFleetResult struct {
	Replicas int
	Rate     float64 // calibrated open-loop rate (queries/sec)

	Before, During, After workload.MixedResult

	// Alert timeline, absolute times lifted from the journal.
	KillAt     time.Time
	PendingAt  time.Time
	FiringAt   time.Time
	ReplacedAt time.Time // the post-kill placement flip
	ResolvedAt time.Time

	// Fleet tail rollup over the whole run: the merged-histogram
	// quantile vs the mean of per-replica p99s (which hides the tail).
	FleetP99      time.Duration
	AvgReplicaP99 time.Duration

	// Overhead accounting: the collector's cumulative sampling time
	// against the observed phase's wall clock, plus an A/B throughput
	// comparison of the same healthy window with and without the
	// observability plane running.
	CollectorSelf time.Duration
	ObservedWall  time.Duration
	OverheadFrac  float64
	BaselineQPS   float64
	ObservedQPS   float64

	// EventsByKind counts every journal entry the run produced.
	EventsByKind map[events.Kind]int
}

// stall is a pseudo-layer whose forward pass costs fixed wall-clock
// time per instance: it stands in for a fixed-capacity accelerator
// stage, which makes the experiment's overload arithmetic — one
// replica serves ~1/perInst queries per second, no more — hold on any
// host instead of varying with how many cores the test box has and
// how many replicas contend for them.
type stall struct {
	name    string
	perInst time.Duration
}

func (s *stall) Name() string                     { return s.name }
func (s *stall) Kind() string                     { return "stall" }
func (s *stall) OutShape(in []int) ([]int, error) { return in, nil }
func (s *stall) Params() []*nn.Param              { return nil }
func (s *stall) Kernels(in []int, batch int, ks []nn.Kernel) []nn.Kernel {
	return ks
}

func (s *stall) Forward(ctx *nn.Ctx, in, out *tensor.Tensor) {
	time.Sleep(time.Duration(in.Dim(0)) * s.perInst)
	copy(out.Data(), in.Data())
}

// obsNet bounds a replica at a known rate via the stall stage, so
// "kill one of two assignees" translates into real admission sheds on
// the survivor instead of being absorbed invisibly. With the batch
// pinned at 8 instances (MinBatchInstances below) every forward pass
// costs the same wall-clock slice, which keeps the capacity — and
// with it the whole overload arithmetic — stable across hosts.
func obsNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("obs", nn.KindDNN, 64)
	n.Add(nn.NewFC("fc1", rng, 64, 32)).
		Add(&stall{name: "stall", perInst: obsPerInst}).
		Add(nn.NewSoftmax("prob"))
	return n
}

func obsAppCfg() service.AppConfig {
	return service.AppConfig{
		BatchInstances:    obsBatch,
		MinBatchInstances: obsBatch, // pin the batch: per-batch cost is fixed wall-clock
		BatchWindow:       2 * time.Millisecond,
		Workers:           1,
		MaxPending:        512,
		SLO:               30 * time.Millisecond,
	}
}

// obsPerInst and obsBatch set the stall net's operating point: every
// forward pass carries exactly obsBatch instances (the batch is
// pinned) and sleeps obsBatch×obsPerInst.
const (
	obsPerInst = 400 * time.Microsecond
	obsBatch   = 8
)

// probeCapacity calibrates one replica's serving capacity. With the
// batch pinned, capacity is obsBatch over the wall-clock cost of one
// forward pass — but time.Sleep overshoots its argument by a
// host-dependent slack (timer granularity), so the cost is measured
// rather than computed. A closed-loop probe would be worse than it
// looks: on a small host its rejected-query retry spin competes for
// CPU with the very server it is measuring.
func probeCapacity() float64 {
	samples := make([]time.Duration, 5)
	for i := range samples {
		t0 := time.Now()
		time.Sleep(obsBatch * obsPerInst)
		samples[i] = time.Since(t0)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(obsBatch) / samples[len(samples)/2].Seconds()
}

// ObsFleetRun drives the observed kill-mid-load story: a baseline
// healthy window without the observability plane (for the overhead
// A/B), the same window observed, then a replica kill and a recovery
// window with the collector, alert engine, and journal watching.
// window sizes the healthy drive; the kill and recovery windows are
// 2× it so the multi-window burn alert has room to fire and resolve.
func ObsFleetRun(replicas int, window time.Duration) (ObsFleetResult, error) {
	res := ObsFleetResult{Replicas: replicas}
	silent := func(string, ...any) {}
	const app = "imc"

	cap1 := probeCapacity()
	// 1.45× one replica's capacity: the healthy pair of assignees sits
	// at ~72% utilization each, while the post-kill survivor is pushed
	// to 145% and must shed roughly a third of the demand — far above
	// the fast window's 20% burn threshold, far below anything the
	// healthy fleet produces.
	res.Rate = 1.45 * cap1

	j := events.New(1024)
	rt := router.New(router.Config{
		Policy: router.LeastOutstanding,
		Health: router.HealthConfig{
			FailureThreshold: 2,
			ProbeInterval:    20 * time.Millisecond,
			MaxProbeInterval: 100 * time.Millisecond,
		},
	})
	defer rt.Close()
	rt.SetJournal(j)

	ctl := controlplane.NewController(controlplane.Config{
		Router: rt,
		Mapper: controlplane.NewMapper(controlplane.MapperConfig{
			Policy:       controlplane.LeastLoaded{},
			DefaultCount: 2,
		}),
		Apps: []string{app},
		// Detection is deliberately deliberate (~300ms): the alert must
		// fire while the fleet is still degraded, not after the control
		// plane has already healed it.
		DeadAfter:  12,
		DrainDelay: 150 * time.Millisecond,
		Logf:       silent,
		Journal:    j,
	})

	servers := make(map[string]*service.Server, replicas)
	targets := make([]timeseries.Target, 0, replicas)
	for i := 0; i < replicas; i++ {
		id := fmt.Sprintf("r%d", i)
		srv := service.NewServer()
		srv.SetLogger(silent)
		defer srv.Close()
		srv.SetJournal(j, id)
		servers[id] = srv
		if err := rt.AddBackend(id, srv); err != nil {
			return res, err
		}
		ctl.Join(controlplane.NewServerMember(id, srv,
			map[string]*nn.Net{app: obsNet(1)}, obsAppCfg()))
		targets = append(targets, timeseries.Target{Replica: id, Server: srv})
	}
	if r := ctl.Reconcile(); r.Moves == 0 {
		return res, fmt.Errorf("initial reconcile placed nothing")
	}
	ctl.Run(25 * time.Millisecond)
	defer ctl.Stop()

	payload := func(*tensor.RNG) []float32 { return make([]float32, 64) }
	mix := workload.Mix{{Name: app, Weight: 1, Payload: payload}}
	drive := func(d time.Duration) workload.MixedResult {
		// The deep inflight cap matters: overload must be allowed to
		// build a real server-side queue so the admission estimate
		// crosses its budget and sheds — a shallow cap would quietly
		// convert the overload into queueing delay instead.
		return workload.DriveMixed(rt, mix, res.Rate, workload.FlatCurve(), 512, workload.DriveOptions{
			Duration: d,
			Deadline: 100 * time.Millisecond,
			SLO:      30 * time.Millisecond,
		})
	}

	// Baseline: the healthy window with no collector or alert engine
	// running (the journal is attached but idle — nothing transitions).
	base := drive(window)
	res.BaselineQPS = float64(base.Total.Queries) / window.Seconds()

	// Attach the observability plane and repeat the same window.
	coll := timeseries.NewCollector(timeseries.Config{
		Interval: 10 * time.Millisecond,
		Slots:    1024,
		Targets:  targets,
		SLO:      map[string]time.Duration{app: 30 * time.Millisecond},
	})
	coll.Run()
	defer coll.Stop()
	engine := alerts.New(coll, j, alerts.Rule{
		App:        app,
		Objective:  0.95,
		FastWindow: 100 * time.Millisecond,
		FastBurn:   4,
		SlowWindow: 200 * time.Millisecond,
		SlowBurn:   2,
		Pending:    20 * time.Millisecond,
		MinDemand:  10,
		KeepFiring: 150 * time.Millisecond,
	})
	engine.Run(10 * time.Millisecond)
	defer engine.Stop()
	observedStart := time.Now()

	res.Before = drive(window)
	res.ObservedQPS = float64(res.Before.Total.Queries) / window.Seconds()

	// Kill an assignee mid-load and drive through the failure.
	victim := ""
	if pls := rt.Placements()[app]; len(pls) > 0 {
		victim = pls[0].Replica
	}
	if victim == "" {
		return res, fmt.Errorf("no placement installed for %s", app)
	}
	res.KillAt = time.Now()
	servers[victim].Close()
	res.During = drive(2 * window)

	// Recovery window: the control plane has re-placed the app; the
	// burn subsides and the alert resolves.
	res.After = drive(2 * window)

	engine.Stop()
	coll.Stop()
	res.ObservedWall = time.Since(observedStart)
	res.CollectorSelf = coll.SelfTime()
	if res.ObservedWall > 0 {
		res.OverheadFrac = float64(res.CollectorSelf) / float64(res.ObservedWall)
	}

	// Fleet tail: merged-histogram p99 over the whole observed run vs
	// the mean of per-replica p99s.
	res.FleetP99 = coll.FleetQuantile(app, 0.99, res.ObservedWall)
	var sum time.Duration
	n := 0
	for id := range servers {
		if rs := coll.ReplicaApp(id, app); rs != nil {
			if snap, ok := servers[id].RequestHistogram(app); ok && snap.Count > 0 {
				sum += snap.Quantile(0.99)
				n++
			}
		}
	}
	if n > 0 {
		res.AvgReplicaP99 = sum / time.Duration(n)
	}

	// Lift the alert + placement timeline out of the journal.
	res.EventsByKind = map[events.Kind]int{}
	for _, ev := range j.Recent(0) {
		res.EventsByKind[ev.Kind]++
		switch ev.Kind {
		case events.KindAlert:
			switch {
			case strings.Contains(ev.Msg, "pending") && res.PendingAt.IsZero():
				res.PendingAt = ev.Time
			case strings.Contains(ev.Msg, "FIRING") && res.FiringAt.IsZero():
				res.FiringAt = ev.Time
			case strings.Contains(ev.Msg, "RESOLVED"):
				// Keep the last resolution: with a resolve hold a
				// flap is rare, but recovery is the one that counts.
				res.ResolvedAt = ev.Time
			}
		case events.KindPlacement:
			if ev.Time.After(res.KillAt) && res.ReplacedAt.IsZero() {
				res.ReplacedAt = ev.Time
			}
		}
	}
	return res, nil
}

// RenderObsFleet prints the observed kill run: per-window serving
// numbers, the journaled alert timeline, the merged-vs-averaged fleet
// tail, and the instrumentation overhead.
func RenderObsFleet() string {
	out := "Extension: fleet observability — journaled kill, burn-rate alert lifecycle, merged fleet p99\n"
	res, err := ObsFleetRun(3, 400*time.Millisecond)
	if err != nil {
		return out + err.Error() + "\n"
	}
	t := &table{header: []string{"window", "issued", "ok", "shed", "expired", "errors", "attainment", "p99"}}
	row := func(name string, r workload.MixedResult) {
		t.add(name,
			fmt.Sprint(r.Total.Issued()), fmt.Sprint(r.Total.Queries),
			fmt.Sprint(r.Total.Shed), fmt.Sprint(r.Total.Expired), fmt.Sprint(r.Total.Errors),
			fmt.Sprintf("%.3f", r.Total.SLOAttainment()),
			r.Total.Latency.P99.Round(time.Microsecond).String())
	}
	row("healthy", res.Before)
	row("kill", res.During)
	row("recovered", res.After)
	out += t.String()

	since := func(ts time.Time) string {
		if ts.IsZero() {
			return "never"
		}
		return "+" + ts.Sub(res.KillAt).Round(time.Millisecond).String()
	}
	out += fmt.Sprintf("alert timeline (offsets from the kill): pending %s, FIRING %s, re-placed %s, RESOLVED %s\n",
		since(res.PendingAt), since(res.FiringAt), since(res.ReplacedAt), since(res.ResolvedAt))
	out += fmt.Sprintf("fleet p99 (merged histograms) %v vs avg of per-replica p99s %v\n",
		res.FleetP99.Round(time.Microsecond), res.AvgReplicaP99.Round(time.Microsecond))

	kinds := make([]string, 0, len(res.EventsByKind))
	for k := range res.EventsByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, res.EventsByKind[events.Kind(k)])
	}
	out += "journal: " + strings.Join(parts, " ") + "\n"
	out += fmt.Sprintf("(rate %.0f q/s over %d replicas; collector self-time %v of %v observed = %.3f%% overhead;\n"+
		" healthy-window QPS observed %.0f vs unobserved baseline %.0f)\n",
		res.Rate, res.Replicas,
		res.CollectorSelf.Round(time.Microsecond), res.ObservedWall.Round(time.Millisecond), 100*res.OverheadFrac,
		res.ObservedQPS, res.BaselineQPS)
	return out
}
