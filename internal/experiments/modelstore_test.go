package experiments

import (
	"testing"
	"time"

	"djinn/internal/testutil"
)

// TestModelStoreRunAcceptance runs a scaled-down bounded-residency
// serve (20 models, quarter budget) and checks the experiment's
// acceptance invariants: resident bytes never exceed the budget, the
// budget forces evictions, every model answers its cold query, and no
// steady-state query is lost.
func TestModelStoreRunAcceptance(t *testing.T) {
	testutil.NoLeaks(t)
	if testing.Short() {
		t.Skip("bounded-residency serving run")
	}
	res, err := ModelStoreRun(20, 0.25, 4, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d queries failed", res.Failed)
	}
	if res.Stats.PeakBytes > res.Stats.BudgetBytes {
		t.Fatalf("peak resident %d exceeded budget %d", res.Stats.PeakBytes, res.Stats.BudgetBytes)
	}
	if res.Stats.Evictions == 0 {
		t.Fatalf("no evictions with a quarter budget: %+v", res.Stats)
	}
	if res.Stats.Faults < int64(res.Models) {
		t.Fatalf("faults %d < %d cold queries", res.Stats.Faults, res.Models)
	}
	if res.SteadyQueries == 0 {
		t.Fatal("steady state answered no queries")
	}
	if res.ColdP50 <= 0 || res.SteadyP50 <= 0 {
		t.Fatalf("degenerate latency sample: cold p50 %v, steady p50 %v", res.ColdP50, res.SteadyP50)
	}
	if res.Stats.LoadErrors != 0 {
		t.Fatalf("%d load errors", res.Stats.LoadErrors)
	}
}
