package experiments

import (
	"strings"
	"testing"
)

// TestAblationCalibrationOrderingRobust: the paper's core qualitative
// claim — heavy DNNs gain an order of magnitude more from the GPU than
// the tiny NLP nets — must survive ±40% shifts in every GPU calibration
// constant.
func TestAblationCalibrationOrderingRobust(t *testing.T) {
	rows := plat().AblationCalibration()
	for _, r := range rows {
		if r.Metric == "ASR/POS-ratio" && r.Value < 5 {
			t.Errorf("at %s the ASR/POS speedup ratio collapsed to %.1f", r.Setting, r.Value)
		}
		if r.Metric == "ASR-batch1-speedup" && (r.Value < 40 || r.Value > 400) {
			t.Errorf("at %s ASR speedup %.0f left the plausible band", r.Setting, r.Value)
		}
	}
}

// TestAblationLaunchOverhead: the NLP batching gain exists at every
// overhead setting and exceeds ASR's everywhere (batching is about
// occupancy, not just launch amortisation).
func TestAblationLaunchOverhead(t *testing.T) {
	rows := plat().AblationLaunchOverhead()
	bySetting := map[string]map[string]float64{}
	for _, r := range rows {
		if bySetting[r.Setting] == nil {
			bySetting[r.Setting] = map[string]float64{}
		}
		bySetting[r.Setting][r.Metric] = r.Value
	}
	for setting, m := range bySetting {
		if m["POS-batch-gain"] < 4 {
			t.Errorf("%s: POS batching gain %.1f too small", setting, m["POS-batch-gain"])
		}
		if m["POS-batch-gain"] <= m["ASR-batch-gain"] {
			t.Errorf("%s: NLP should gain more from batching than ASR (%.1f vs %.1f)",
				setting, m["POS-batch-gain"], m["ASR-batch-gain"])
		}
	}
}

// TestAblationPoolGranularity: flexible per-app chassis sizing is never
// worse than any fixed size, and beats the worst fixed size clearly —
// quantifying the disaggregated design's provisioning freedom.
func TestAblationPoolGranularity(t *testing.T) {
	rows := plat().AblationPoolGranularity()
	var flexible float64
	worst := 0.0
	for _, r := range rows {
		if r.Setting == "flexible" {
			flexible = r.Value
		} else if r.Value > worst {
			worst = r.Value
		}
	}
	if flexible <= 0 {
		t.Fatal("missing flexible row")
	}
	for _, r := range rows {
		if r.Setting != "flexible" && r.Value < flexible*0.999 {
			t.Errorf("fixed pool %s (%.3f) beat flexible sizing (%.3f)", r.Setting, r.Value, flexible)
		}
	}
	if worst < flexible*1.2 {
		t.Errorf("expected the worst fixed pool (%.3f) to be clearly worse than flexible (%.3f)", worst, flexible)
	}
}

func TestRenderAblations(t *testing.T) {
	out := plat().RenderAblations()
	for _, want := range []string{"calibration", "launch-overhead", "pool-granularity", "flexible"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
