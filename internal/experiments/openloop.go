package experiments

import (
	"fmt"

	"djinn/internal/gpusim"
	"djinn/internal/models"
	"djinn/internal/workload"
)

// Extension experiment (not a paper figure): the latency/load curve of
// the DjiNN service under open-loop Poisson arrivals, through the real
// batching policy (size threshold + window flush). The paper evaluates
// throughput at saturation and latency per batch size; this adds the
// serving-systems view — where the latency elbow sits as offered load
// approaches the Figure 10 capacity.
type OpenLoopPoint struct {
	App       models.App
	Load      float64 // offered QPS
	LoadFrac  float64 // fraction of saturation capacity
	QPS       float64
	MeanLat   float64
	P99Lat    float64
	MeanBatch float64
}

// OpenLoopFracs is the swept fraction of saturation capacity.
var OpenLoopFracs = []float64{0.05, 0.25, 0.5, 0.75, 0.9, 1.05}

// OpenLoop sweeps offered load for one application on one GPU with the
// Table 3 batch size, 4 service workers and a 2ms aggregation window.
func (p Platform) OpenLoop(app models.App) []OpenLoopPoint {
	spec := workload.Get(app)
	capacity := p.ServerQPS(app, 1, OptimalMPSProcs, true, true).QPS
	kernels := func(q int) []gpusim.KernelWork {
		return p.GPU.Lower(spec.Kernels(q))
	}
	var pts []OpenLoopPoint
	for _, frac := range OpenLoopFracs {
		rate := capacity * frac
		// Simulate long enough for thousands of batches at this rate.
		horizon := 200000 / rate
		if horizon < 0.5 {
			horizon = 0.5
		}
		if horizon > 30 {
			horizon = 30
		}
		res := gpusim.SimulateOpenLoop(gpusim.OpenLoopConfig{
			Server: gpusim.ServerConfig{
				Device: p.GPU, GPUs: 1, ProcsPerGPU: OptimalMPSProcs, MPS: true,
				HostPCIeBW: p.HostPCIeBW, PCIeLatency: p.PCIeLatency,
			},
			ArrivalRate:   rate,
			BatchQueries:  spec.BatchSize,
			BatchWindow:   2e-3,
			BatchKernels:  kernels,
			BytesPerQuery: spec.WireBytes(),
			Seed:          uint64(app) + 1,
		}, horizon)
		pts = append(pts, OpenLoopPoint{
			App: app, Load: rate, LoadFrac: frac,
			QPS: res.QPS, MeanLat: res.MeanLat, P99Lat: res.P99,
			MeanBatch: res.MeanBatch,
		})
	}
	return pts
}

// RenderOpenLoop prints the latency/load study for a representative
// subset of applications.
func (p Platform) RenderOpenLoop() string {
	out := "Extension: open-loop latency vs offered load (1 GPU, 4 workers, 2ms window)\n"
	for _, app := range []models.App{models.POS, models.IMC, models.ASR} {
		t := &table{header: []string{"load (frac of capacity)", "offered QPS", "served QPS", "mean lat ms", "p99 lat ms", "mean batch"}}
		for _, pt := range p.OpenLoop(app) {
			t.add(fmt.Sprintf("%.2f", pt.LoadFrac), f1(pt.Load), f1(pt.QPS),
				f3(pt.MeanLat*1e3), f3(pt.P99Lat*1e3), f1(pt.MeanBatch))
		}
		out += fmt.Sprintf("\n[%s]\n%s", app, t.String())
	}
	return out
}
