package experiments

import (
	"fmt"
	"time"

	"djinn/internal/controlplane"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

// The controlplane experiment measures the cluster-level claim: when a
// replica serving a placed application dies mid-load, the control plane
// detects it, re-places the application onto a spare, and SLO
// attainment recovers — with the detection-to-replacement time (the
// availability gap) reported, not hand-waved. This is the DjiNN
// service run as a fleet rather than a single node: the paper's
// throughput/latency story only holds at warehouse scale if placement
// survives machine churn.

// ControlPlaneResult summarises one kill-mid-load run.
type ControlPlaneResult struct {
	Replicas int
	Apps     int

	Before, During, After workload.MixedResult

	// RebalanceTime is kill → first reconcile move: how long the fleet
	// ran with the app below its replica count.
	RebalanceTime time.Duration
	Metrics       controlplane.Metrics
}

// cpNet is the serving payload model: small enough that the batch
// window, not the forward pass, bounds a replica.
func cpNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("cp", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// ControlPlaneRun builds an in-process fleet of replicas behind a
// placement-aware router and a running controller, drives a weighted
// two-app mix open-loop in three windows — healthy, kill-mid-load, and
// recovered — and reports per-window attainment plus the kill-to-move
// rebalance time.
func ControlPlaneRun(replicas int, window time.Duration, rate float64) (ControlPlaneResult, error) {
	res := ControlPlaneResult{Replicas: replicas, Apps: 2}
	silent := func(string, ...any) {}
	apps := []string{"imc", "asr"}

	rt := router.New(router.Config{
		Policy: router.LeastOutstanding,
		Health: router.HealthConfig{
			FailureThreshold: 2,
			ProbeInterval:    20 * time.Millisecond,
			MaxProbeInterval: 100 * time.Millisecond,
		},
	})
	defer rt.Close()

	deadline := 150 * time.Millisecond
	ctl := controlplane.NewController(controlplane.Config{
		Router: rt,
		Mapper: controlplane.NewMapper(controlplane.MapperConfig{
			Policy:       controlplane.LeastLoaded{},
			DefaultCount: 2,
			CanaryWeight: 50,
		}),
		Autoscaler: controlplane.NewAutoscaler(controlplane.AutoscaleConfig{
			Min: 2, Max: replicas,
			UpAfter: 2, DownAfter: 20,
			UpCooldown: 50 * time.Millisecond, DownCooldown: time.Second,
		}),
		Apps:       apps,
		DeadAfter:  2,
		DrainDelay: deadline + 20*time.Millisecond,
		Logf:       silent,
	})

	servers := make(map[string]*service.Server, replicas)
	for i := 0; i < replicas; i++ {
		id := fmt.Sprintf("r%d", i)
		srv := service.NewServer()
		srv.SetLogger(silent)
		defer srv.Close()
		servers[id] = srv
		if err := rt.AddBackend(id, srv); err != nil {
			return res, err
		}
		nets := map[string]*nn.Net{}
		for j, app := range apps {
			nets[app] = cpNet(uint64(j + 1))
		}
		ctl.Join(controlplane.NewServerMember(id, srv, nets, service.AppConfig{
			BatchInstances: 8,
			BatchWindow:    2 * time.Millisecond,
			Workers:        2,
			MaxPending:     256,
			SLO:            40 * time.Millisecond,
		}))
	}
	if r := ctl.Reconcile(); r.Moves == 0 {
		return res, fmt.Errorf("initial reconcile placed nothing")
	}
	ctl.Run(5 * time.Millisecond)
	defer ctl.Stop()

	payload := func(*tensor.RNG) []float32 { return make([]float32, 8) }
	mix := workload.Mix{
		{Name: "imc", Weight: 3, Payload: payload},
		{Name: "asr", Weight: 1, Payload: payload},
	}
	drive := func() workload.MixedResult {
		return workload.DriveMixed(rt, mix, rate, workload.FlatCurve(), 16, workload.DriveOptions{
			Duration: window,
			Deadline: deadline,
			SLO:      40 * time.Millisecond,
		})
	}

	// Window 1: healthy fleet.
	res.Before = drive()

	// Kill a replica that holds a placement, then drive through the
	// failover while a prober times the kill → first-move gap.
	victim := ""
	if pls := rt.Placements()["imc"]; len(pls) > 0 {
		victim = pls[0].Replica
	}
	if victim == "" {
		return res, fmt.Errorf("no placement installed for imc")
	}
	movesBefore := ctl.Snapshot().Moves
	killAt := time.Now()
	servers[victim].Close()
	moved := make(chan time.Duration, 1)
	go func() {
		for {
			if ctl.Snapshot().Moves > movesBefore {
				moved <- time.Since(killAt)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	res.During = drive()

	select {
	case res.RebalanceTime = <-moved:
	case <-time.After(2 * window):
		return res, fmt.Errorf("controller never rebalanced after the kill")
	}

	// Window 3: fleet re-placed around the dead replica.
	res.After = drive()
	res.Metrics = ctl.Snapshot()
	return res, nil
}

// RenderControlPlane prints the kill-mid-load run: attainment per
// window, the rebalance gap, and the control plane's final counters.
func RenderControlPlane() string {
	out := "Extension: cluster control plane — replica kill under load, re-placement, recovery\n"
	res, err := ControlPlaneRun(3, 400*time.Millisecond, 300)
	if err != nil {
		return out + err.Error() + "\n"
	}
	t := &table{header: []string{"window", "issued", "ok", "shed", "expired", "errors", "attainment", "p99"}}
	row := func(name string, r workload.MixedResult) {
		t.add(name,
			fmt.Sprint(r.Total.Issued()), fmt.Sprint(r.Total.Queries),
			fmt.Sprint(r.Total.Shed), fmt.Sprint(r.Total.Expired), fmt.Sprint(r.Total.Errors),
			fmt.Sprintf("%.3f", r.Total.SLOAttainment()),
			r.Total.Latency.P99.Round(time.Microsecond).String())
	}
	row("healthy", res.Before)
	row("kill", res.During)
	row("recovered", res.After)
	out += t.String()
	out += fmt.Sprintf("(%d replicas, %d apps; kill -> first re-placement move in %v;\n"+
		" %d rebalances, %d moves total, %d members live / %d dead at the end;\n"+
		" recovered-window attainment %.3f vs healthy %.3f)\n",
		res.Replicas, res.Apps, res.RebalanceTime.Round(time.Millisecond),
		res.Metrics.Rebalances, res.Metrics.Moves,
		res.Metrics.Members-res.Metrics.Dead, res.Metrics.Dead,
		res.After.Total.SLOAttainment(), res.Before.Total.SLOAttainment())
	return out
}
