package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"djinn/internal/modelstore"
	"djinn/internal/nn"
	"djinn/internal/service"
	"djinn/internal/tensor"
)

// The modelstore experiment measures the multi-tenant claim behind the
// weight store: a fleet of registered models far larger than the
// residency budget, served from one node whose resident set stays
// bounded while queries fault models in and the LRU evicts cold ones.
// The paper's DjiNN instance pins its 7 models at boot (§3); this is
// the "hundreds of models, few hot" regime a shared WSC service tier
// actually faces.

// ModelStoreResult summarises one bounded-residency serving run.
type ModelStoreResult struct {
	Models      int   // registered model versions
	DiskBytes   int64 // total weight bytes on disk
	BudgetBytes int64 // configured residency budget

	ColdP50, ColdP99     time.Duration // first-touch (fault-in) query latency
	SteadyP50, SteadyP99 time.Duration // steady-state query latency
	SteadyQueries        int           // steady-state queries answered
	Failed               int           // queries lost (must be 0)

	Stats modelstore.Stats // registry counters at the end of the run
}

// storeNet is one tenant model: a small FC stack with per-model
// weights, so every model answers distinctly and a wrong-model bug
// would show up as a wrong answer.
func storeNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("tenant", nn.KindDNN, 16)
	n.Add(nn.NewFC("fc1", rng, 16, 32)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 32, 8)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// ModelStoreRun exports nModels tenant models to disk, registers them
// with a registry whose budget is budgetFrac of their total bytes, and
// serves them from one server: a cold sweep touching every model once
// (each query faults its model in), then a steady-state closed loop of
// workers drawing models uniformly for dur. Every query is answered
// from mapped weight pages; evictions run concurrently with serving.
func ModelStoreRun(nModels int, budgetFrac float64, workers int, dur time.Duration) (ModelStoreResult, error) {
	var res ModelStoreResult
	dir, err := os.MkdirTemp("", "djinn-modelstore-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	// Export the tenant fleet.
	names := make([]string, nModels)
	for i := range names {
		names[i] = fmt.Sprintf("m%03d", i)
		path := filepath.Join(dir, names[i]+".djw")
		if err := modelstore.WriteFile(path, names[i], 1, storeNet(uint64(i+1))); err != nil {
			return res, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return res, err
		}
		res.DiskBytes += fi.Size()
	}
	res.Models = nModels
	res.BudgetBytes = int64(budgetFrac * float64(res.DiskBytes))

	reg := modelstore.NewRegistry(modelstore.Config{BudgetBytes: res.BudgetBytes})
	srv := service.NewServer()
	srv.SetLogger(func(string, ...any) {})
	srv.AttachModelStore(reg, service.AppConfig{
		BatchInstances: 4,
		BatchWindow:    200 * time.Microsecond,
		Workers:        1,
	})
	for _, name := range names {
		if _, err := reg.Register(filepath.Join(dir, name+".djw")); err != nil {
			return res, err
		}
	}
	defer func() {
		srv.Close()
		reg.Close()
	}()

	in := make([]float32, 16)
	tensor.NewRNG(7).FillUniform(in, -1, 1)

	// Cold sweep: every model's first query pays the fault-in (open,
	// validate, mmap, compile, evict a victim when over budget).
	cold := make([]time.Duration, 0, nModels)
	for _, name := range names {
		t0 := time.Now()
		if _, err := srv.Infer(name, in); err != nil {
			return res, fmt.Errorf("cold %s: %w", name, err)
		}
		cold = append(cold, time.Since(t0))
	}
	res.ColdP50, res.ColdP99 = pctDur(cold, 0.50), pctDur(cold, 0.99)

	// Steady state: closed-loop workers draw models uniformly, so the
	// working set exceeds the budget and the LRU churns throughout.
	var mu sync.Mutex
	var steady []time.Duration
	failed := 0
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
			var lats []time.Duration
			fails := 0
			for time.Now().Before(deadline) {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				name := names[rng%uint64(nModels)]
				t0 := time.Now()
				if _, err := srv.Infer(name, in); err != nil {
					fails++
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			steady = append(steady, lats...)
			failed += fails
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.SteadyQueries, res.Failed = len(steady), failed
	res.SteadyP50, res.SteadyP99 = pctDur(steady, 0.50), pctDur(steady, 0.99)
	res.Stats = reg.Stats()
	return res, nil
}

// pctDur returns the q-quantile of a latency sample (nearest rank).
func pctDur(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RenderModelStore prints the bounded-residency serving run: 100
// registered tenant models, a budget a quarter of their total bytes,
// cold fault-in latency vs steady-state latency, and the eviction
// churn the budget forced — with zero failed queries.
func RenderModelStore() string {
	out := "Extension: memory-mapped model store — 100 tenants under a bounded residency budget\n"
	res, err := ModelStoreRun(100, 0.25, 4, 2*time.Second)
	if err != nil {
		return out + err.Error() + "\n"
	}
	t := &table{header: []string{"models", "disk", "budget", "peak resident", "evictions", "cold p50", "cold p99", "steady p50", "steady p99"}}
	t.add(fmt.Sprint(res.Models), si(float64(res.DiskBytes)), si(float64(res.BudgetBytes)),
		si(float64(res.Stats.PeakBytes)), fmt.Sprint(res.Stats.Evictions),
		res.ColdP50.Round(time.Microsecond).String(), res.ColdP99.Round(time.Microsecond).String(),
		res.SteadyP50.Round(time.Microsecond).String(), res.SteadyP99.Round(time.Microsecond).String())
	out += t.String()
	out += fmt.Sprintf("(%d steady-state queries, %d failed; %d fault-ins after the cold sweep —\n"+
		" every fault re-opens, re-validates, and re-maps the victim of an earlier eviction;\n"+
		" resident bytes never exceeded the budget: peak %s <= %s)\n",
		res.SteadyQueries, res.Failed, res.Stats.Faults-int64(res.Models),
		si(float64(res.Stats.PeakBytes)), si(float64(res.Stats.BudgetBytes)))
	return out
}
