package experiments

import (
	"djinn/internal/gpusim"
	"djinn/internal/models"
	"djinn/internal/workload"
)

// Fig4Row is one bar of Figure 4: the fraction of a query's CPU cycles
// spent in the DNN versus pre/post-processing.
type Fig4Row struct {
	App       models.App
	DNNFrac   float64
	PreFrac   float64
	PostFrac  float64
	TotalSecs float64 // single-core seconds per query
	DNNSecs   float64
}

// Fig4 reproduces Figure 4's cycle breakdown on the Xeon core.
func (p Platform) Fig4() []Fig4Row {
	var rows []Fig4Row
	for _, app := range models.Apps {
		spec := workload.Get(app)
		pre := p.CPU.ScalarTime(spec.PreOps)
		post := p.CPU.ScalarTime(spec.PostOps)
		dnn := p.CPUDNNTime(app)
		total := pre + dnn + post
		rows = append(rows, Fig4Row{
			App: app, DNNFrac: dnn / total, PreFrac: pre / total,
			PostFrac: post / total, TotalSecs: total, DNNSecs: dnn,
		})
	}
	return rows
}

// Fig5Row is one bar of Figure 5: GPU-over-CPU throughput improvement
// of the DNN service component at batch size 1 without MPS.
type Fig5Row struct {
	App     models.App
	Speedup float64
}

// Fig5 reproduces Figure 5's baseline GPU-vs-CPU comparison.
func (p Platform) Fig5() []Fig5Row {
	var rows []Fig5Row
	for _, app := range models.Apps {
		cpu := p.CPUDNNTime(app)
		gpu := p.GPUBatchCycle(app, 1)
		rows = append(rows, Fig5Row{App: app, Speedup: cpu / gpu})
	}
	return rows
}

// Fig6Row is one application's profiler counters (Figure 6) at batch 1.
type Fig6Row struct {
	App     models.App
	Profile gpusim.Profile
}

// Fig6 reproduces Figure 6's bottleneck analysis: kernel-level counters
// weighted by execution time, at batch size 1.
func (p Platform) Fig6() []Fig6Row {
	var rows []Fig6Row
	for _, app := range models.Apps {
		spec := workload.Get(app)
		rows = append(rows, Fig6Row{App: app, Profile: p.GPU.ProfileForward(spec.Kernels(1))})
	}
	return rows
}

// Fig7Batches is the batch-size sweep of Figure 7.
var Fig7Batches = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Fig7Point is one point of Figure 7's batching study: throughput (7a),
// GPU occupancy (7b) and query latency (7c) at a batch size.
type Fig7Point struct {
	App       models.App
	Batch     int
	QPS       float64
	Occupancy float64
	Latency   float64 // seconds; all queries in a batch share it
}

// Fig7 reproduces Figure 7 for one application.
func (p Platform) Fig7(app models.App) []Fig7Point {
	spec := workload.Get(app)
	var pts []Fig7Point
	for _, b := range Fig7Batches {
		cycle := p.GPUBatchCycle(app, b)
		prof := p.GPU.ProfileForward(spec.Kernels(b))
		pts = append(pts, Fig7Point{
			App: app, Batch: b,
			QPS:       float64(b) / cycle,
			Occupancy: prof.Occupancy,
			Latency:   cycle,
		})
	}
	return pts
}

// PickBatch returns the knee-of-the-curve batch size, mirroring how
// Section 5.1 selects Table 3's batch sizes ("high throughput while
// limiting query latency impact"): the smallest batch that stops
// yielding a ≥10% marginal throughput gain, with latency capped at 5×
// the single-query service time.
func (p Platform) PickBatch(app models.App) int {
	pts := p.Fig7(app)
	latCap := 5 * pts[0].Latency
	for i := 0; i < len(pts)-1; i++ {
		if pts[i+1].QPS < pts[i].QPS*1.10 || pts[i+1].Latency > latCap {
			return pts[i].Batch
		}
	}
	return pts[len(pts)-1].Batch
}

// Fig8Point is one point of Figures 8 and 9: throughput and latency as
// the number of concurrent DNN service instances on one GPU grows, with
// and without MPS. Table 3 batch sizes are used (Section 5.2).
type Fig8Point struct {
	App       models.App
	Instances int
	MPSQPS    float64
	NonMPSQPS float64
	MPSLat    float64
	NonMPSLat float64
}

// Fig8Instances is the instance-count sweep (MPS supports at most 16).
var Fig8Instances = []int{1, 2, 4, 8, 16}

// Fig8 reproduces Figures 8 and 9 for one application on a single GPU.
func (p Platform) Fig8(app models.App) []Fig8Point {
	var pts []Fig8Point
	for _, n := range Fig8Instances {
		mps := p.ServerQPS(app, 1, n, true, true)
		non := p.ServerQPS(app, 1, n, false, true)
		pts = append(pts, Fig8Point{
			App: app, Instances: n,
			MPSQPS: mps.QPS, NonMPSQPS: non.QPS,
			MPSLat: mps.AvgLatency, NonMPSLat: non.AvgLatency,
		})
	}
	return pts
}

// Fig10Row is one bar of Figure 10: final single-GPU speedup over the
// CPU core with input batching (Table 3 sizes) and 4 MPS services.
type Fig10Row struct {
	App     models.App
	Batch   int
	Speedup float64
}

// OptimalMPSProcs is the concurrency Section 5.2 selects: "four MPS
// concurrent DNN servers on one GPU achieves high throughput gain with
// limited latency impact".
const OptimalMPSProcs = 4

// Fig10 reproduces Figure 10.
func (p Platform) Fig10() []Fig10Row {
	var rows []Fig10Row
	for _, app := range models.Apps {
		spec := workload.Get(app)
		res := p.ServerQPS(app, 1, OptimalMPSProcs, true, true)
		rows = append(rows, Fig10Row{
			App: app, Batch: spec.BatchSize,
			Speedup: res.QPS * p.CPUDNNTime(app),
		})
	}
	return rows
}

// GPUCounts is the multi-GPU sweep of Figures 11-13.
var GPUCounts = []int{1, 2, 3, 4, 5, 6, 7, 8}

// Fig11Point is one point of Figure 11 (PCIe-limited) or Figure 12
// (inputs pinned in GPU memory, no PCIe transfers).
type Fig11Point struct {
	App      models.App
	GPUs     int
	QPS      float64
	Speedup  float64 // over one CPU core
	GPUUtil  float64
	PCIeUtil float64
}

// Fig11 reproduces Figure 11 (pcieLimited=true) or Figure 12 (false)
// for one application.
func (p Platform) Fig11(app models.App, pcieLimited bool) []Fig11Point {
	cpu := p.CPUDNNTime(app)
	var pts []Fig11Point
	for _, n := range GPUCounts {
		res := p.ServerQPS(app, n, OptimalMPSProcs, true, pcieLimited)
		pts = append(pts, Fig11Point{
			App: app, GPUs: n, QPS: res.QPS, Speedup: res.QPS * cpu,
			GPUUtil: res.GPUUtil, PCIeUtil: res.PCIeUtil,
		})
	}
	return pts
}

// Fig13Point is one point of Figure 13: the network bandwidth required
// to sustain the unconstrained (Figure 12) throughput at a GPU count.
type Fig13Point struct {
	App     models.App
	GPUs    int
	BytesPS float64
}

// Reference bandwidths drawn on Figure 13.
const (
	PCIeV3Bandwidth = 15.75e9 // one x16 link
	TenGbEBandwidth = 1.25e9
)

// Fig13 reproduces Figure 13 for one application: peak throughput
// without bandwidth constraints multiplied by the per-query wire bytes.
func (p Platform) Fig13(app models.App) []Fig13Point {
	spec := workload.Get(app)
	var pts []Fig13Point
	for _, pt := range p.Fig11(app, false) {
		pts = append(pts, Fig13Point{
			App: app, GPUs: pt.GPUs,
			BytesPS: pt.QPS * spec.WireBytes(),
		})
	}
	return pts
}
