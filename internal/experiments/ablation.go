package experiments

import (
	"fmt"

	"djinn/internal/models"
	"djinn/internal/wsc"
)

// Ablation studies for the design choices DESIGN.md §5 calls out. They
// answer "does the conclusion survive if this modelling choice moves?"
// and are rendered by `djinn-bench -exp ablation`.

// AblationRow is one sensitivity result.
type AblationRow struct {
	Study   string
	Setting string
	Metric  string
	Value   float64
}

// AblationCalibration sweeps the GPU calibration constants ±40% and
// reports the headline orderings the paper's conclusions rest on. The
// reproduction gate asserts these orderings hold at every point.
func (p Platform) AblationCalibration() []AblationRow {
	var rows []AblationRow
	for _, scale := range []float64{0.6, 1.0, 1.4} {
		q := p
		q.GPU.MaxEff = p.GPU.MaxEff * scale
		if q.GPU.MaxEff > 0.95 {
			q.GPU.MaxEff = 0.95
		}
		q.GPU.SmallTileEff = clamp01(p.GPU.SmallTileEff * scale)
		q.GPU.MinOcc = p.GPU.MinOcc * scale
		asr := q.CPUDNNTime(models.ASR) / q.GPUBatchCycle(models.ASR, 1)
		pos := q.CPUDNNTime(models.POS) / q.GPUBatchCycle(models.POS, 1)
		rows = append(rows,
			AblationRow{"calibration", fmt.Sprintf("scale=%.1f", scale), "ASR-batch1-speedup", asr},
			AblationRow{"calibration", fmt.Sprintf("scale=%.1f", scale), "POS-batch1-speedup", pos},
			AblationRow{"calibration", fmt.Sprintf("scale=%.1f", scale), "ASR/POS-ratio", asr / pos},
		)
	}
	return rows
}

func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0.05 {
		return 0.05
	}
	return v
}

// AblationLaunchOverhead sweeps the kernel-launch overhead and reports
// the NLP batching gain (the paper's 15×): the gain should grow with
// overhead (more to amortise) but the NLP-gains-most ordering is
// overhead-independent.
func (p Platform) AblationLaunchOverhead() []AblationRow {
	var rows []AblationRow
	for _, oh := range []float64{2e-6, 6e-6, 18e-6} {
		q := p
		q.GPU.LaunchOverhead = oh
		gain := func(app models.App) float64 {
			pts := q.Fig7(app)
			best := 0.0
			for _, pt := range pts {
				if pt.QPS > best {
					best = pt.QPS
				}
			}
			return best / pts[0].QPS
		}
		rows = append(rows,
			AblationRow{"launch-overhead", fmt.Sprintf("%.0fus", oh*1e6), "POS-batch-gain", gain(models.POS)},
			AblationRow{"launch-overhead", fmt.Sprintf("%.0fus", oh*1e6), "ASR-batch-gain", gain(models.ASR)},
		)
	}
	return rows
}

// AblationPoolGranularity compares the Disaggregated design's flexible
// per-app chassis sizing against pools forced to a single fixed GPU
// count per chassis, for the NLP mix at 99% DNN — quantifying how much
// of the disaggregated win is the pool-sizing freedom itself.
func (p Platform) AblationPoolGranularity() []AblationRow {
	mix := p.Mix("NLP")
	s := wsc.Scenario{Mix: mix, DNNFrac: 0.99, RefServers: 500}
	cpu := wsc.DesignTCO(wsc.CPUOnly, s).Total()
	var rows []AblationRow
	rows = append(rows, AblationRow{
		"pool-granularity", "flexible", "NLP-TCO-vs-CPU",
		wsc.DesignTCO(wsc.DisaggregatedGPU, s).Total() / cpu,
	})
	for _, fixed := range []float64{1, 2, 4, 8} {
		inv := wsc.ProvisionDisaggFixed(s, fixed)
		rows = append(rows, AblationRow{
			"pool-granularity", fmt.Sprintf("fixed-%.0f", fixed), "NLP-TCO-vs-CPU",
			wsc.TCO(inv, wsc.Table4()).Total() / cpu,
		})
	}
	return rows
}

// RenderAblations prints every ablation study.
func (p Platform) RenderAblations() string {
	t := &table{header: []string{"study", "setting", "metric", "value"}}
	var all []AblationRow
	all = append(all, p.AblationCalibration()...)
	all = append(all, p.AblationLaunchOverhead()...)
	all = append(all, p.AblationPoolGranularity()...)
	for _, r := range all {
		t.add(r.Study, r.Setting, r.Metric, f2(r.Value))
	}
	return "Ablations: sensitivity of the headline results to model choices\n" + t.String()
}
