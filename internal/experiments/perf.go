// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each Fig*/Table*
// function returns typed rows; rendering to text lives in render.go and
// cmd/djinn-bench drives the full set.
package experiments

import (
	"math"

	"djinn/internal/cpusim"
	"djinn/internal/gpusim"
	"djinn/internal/models"
	"djinn/internal/workload"
)

// Platform bundles the hardware models of Table 2: the Xeon core
// baseline and the K40 GPU with its PCIe v3 host link.
type Platform struct {
	CPU cpusim.CoreSpec
	GPU gpusim.DeviceSpec
	// HostPCIeBW is the aggregate PCIe bandwidth of the host root
	// complex shared by all GPUs (one x16's worth, as the dual-socket
	// board oversubscribes its 8 slots).
	HostPCIeBW  float64
	PCIeLatency float64
}

// DefaultPlatform returns the paper's Table 2 platform.
func DefaultPlatform() Platform {
	return Platform{
		CPU: cpusim.XeonE5(),
		GPU: gpusim.K40(),
		// Two sockets, 40 PCIe v3 lanes each: the eight x16 slots are
		// oversubscribed onto roughly 2×15.75 GB/s of root-complex
		// bandwidth shared by all GPUs.
		HostPCIeBW:  31.5e9,
		PCIeLatency: 3e-6,
	}
}

// CPUDNNTime returns the single-core time for the DNN portion of one
// query (Section 4's CPU baseline: Caffe + ATLAS).
func (p Platform) CPUDNNTime(app models.App) float64 {
	spec := workload.Get(app)
	return p.CPU.ForwardTime(spec.Kernels(1))
}

// CPUQueryTime returns the single-core time for a whole query: pre-
// processing, DNN forward pass, and postprocessing.
func (p Platform) CPUQueryTime(app models.App) float64 {
	spec := workload.Get(app)
	return p.CPU.ScalarTime(spec.PreOps) + p.CPUDNNTime(app) + p.CPU.ScalarTime(spec.PostOps)
}

// GPUBatchCycle returns the single-instance GPU time to serve one batch
// of queryBatch queries: PCIe transfer in, forward pass with launch
// gaps, transfer out. This is the analytic model behind the batching
// study (Figure 7).
func (p Platform) GPUBatchCycle(app models.App, queryBatch int) float64 {
	spec := workload.Get(app)
	t := p.GPU.ForwardTime(spec.Kernels(queryBatch))
	if p.HostPCIeBW > 0 && !math.IsInf(p.HostPCIeBW, 1) {
		bytes := (spec.WireInBytes + spec.WireOutBytes) * float64(queryBatch)
		t += bytes/p.HostPCIeBW + 2*p.PCIeLatency
	}
	return t
}

// GPUQPS returns single-instance GPU throughput at a batch size.
func (p Platform) GPUQPS(app models.App, queryBatch int) float64 {
	return float64(queryBatch) / p.GPUBatchCycle(app, queryBatch)
}

// serverConfig builds the DES configuration for n GPUs with the given
// process count and scheduling mode.
func (p Platform) serverConfig(gpus, procs int, mps, pcieLimited bool) gpusim.ServerConfig {
	cfg := gpusim.ServerConfig{
		Device:      p.GPU,
		GPUs:        gpus,
		ProcsPerGPU: procs,
		MPS:         mps,
		PCIeLatency: p.PCIeLatency,
	}
	if pcieLimited {
		cfg.HostPCIeBW = p.HostPCIeBW
	}
	return cfg
}

// batchWork lowers an app's Table 3 batch for the DES.
func (p Platform) batchWork(app models.App, queryBatch int) gpusim.BatchWork {
	spec := workload.Get(app)
	return gpusim.NewBatchWork(
		p.GPU, spec.Kernels(queryBatch), queryBatch,
		spec.WireInBytes*float64(queryBatch),
		spec.WireOutBytes*float64(queryBatch),
	)
}

// ServerQPS runs the saturation DES: n GPUs, procs instances per GPU,
// Table 3 batch sizes.
func (p Platform) ServerQPS(app models.App, gpus, procs int, mps, pcieLimited bool) gpusim.Result {
	spec := workload.Get(app)
	return gpusim.SaturationQPS(
		p.serverConfig(gpus, procs, mps, pcieLimited),
		p.batchWork(app, spec.BatchSize),
	)
}
