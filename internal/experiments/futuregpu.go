package experiments

import (
	"djinn/internal/gpusim"
	"djinn/internal/models"
)

// Extension experiment: the paper closes by arguing GPUs are "the more
// promising direction for scaling up DNN-based webservices". This
// study replays Figure 10 (Table 3 batching + 4 MPS services) on the
// two GPU generations that followed the K40 — Maxwell's M40 (more
// compute, same DRAM bandwidth) and Pascal's P100 (HBM2) — showing
// which services track compute and which track bandwidth.
type FutureGPURow struct {
	App     models.App
	Device  string
	Speedup float64 // over the same Xeon core baseline
	VsK40   float64 // relative to the K40's Figure 10 value
}

// FutureGPUs replays the optimised single-GPU experiment per device.
func (p Platform) FutureGPUs() []FutureGPURow {
	devices := []gpusim.DeviceSpec{gpusim.K40(), gpusim.M40(), gpusim.P100()}
	var rows []FutureGPURow
	base := map[models.App]float64{}
	for _, dev := range devices {
		q := p
		q.GPU = dev
		for _, r := range q.Fig10() {
			row := FutureGPURow{App: r.App, Device: dev.Name, Speedup: r.Speedup}
			if dev.Name == devices[0].Name {
				base[r.App] = r.Speedup
			}
			row.VsK40 = r.Speedup / base[r.App]
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderFutureGPUs prints the generation study.
func (p Platform) RenderFutureGPUs() string {
	t := &table{header: []string{"app", "device", "speedup vs Xeon core", "vs K40"}}
	for _, r := range p.FutureGPUs() {
		t.add(r.App.String(), r.Device, f1(r.Speedup), f2(r.VsK40))
	}
	return "Extension: Figure 10 replayed on post-K40 GPU generations\n" + t.String()
}
