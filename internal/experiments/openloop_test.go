package experiments

import (
	"strings"
	"testing"

	"djinn/internal/models"
)

// TestOpenLoopExtension: serving-curve sanity for the open-loop
// extension experiment on the NLP service.
func TestOpenLoopExtension(t *testing.T) {
	pts := plat().OpenLoop(models.POS)
	if len(pts) != len(OpenLoopFracs) {
		t.Fatalf("%d points", len(pts))
	}
	// Throughput tracks offered load below capacity.
	for _, pt := range pts[:4] {
		if pt.QPS < pt.Load*0.9 || pt.QPS > pt.Load*1.1 {
			t.Errorf("at %.2f of capacity: served %.0f vs offered %.0f", pt.LoadFrac, pt.QPS, pt.Load)
		}
	}
	// Mean batch size grows with load (the aggregator fills faster).
	if pts[1].MeanBatch < pts[0].MeanBatch {
		t.Errorf("batch fill should grow with load: %.1f → %.1f", pts[0].MeanBatch, pts[1].MeanBatch)
	}
	// Latency explodes past capacity.
	over := pts[len(pts)-1]
	sweet := pts[2]
	if over.MeanLat < 5*sweet.MeanLat {
		t.Errorf("overload latency %.4f should explode past sweet-spot %.4f", over.MeanLat, sweet.MeanLat)
	}
	// Percentiles stay ordered everywhere.
	for _, pt := range pts {
		if pt.P99Lat < pt.MeanLat*0.5 {
			t.Errorf("p99 %.4f below half the mean %.4f at load %.2f", pt.P99Lat, pt.MeanLat, pt.LoadFrac)
		}
	}
}

// TestEnergyExtension: the GPU's per-query energy advantage tracks its
// throughput advantage scaled by the power ratio — roughly an order of
// magnitude for the heavy networks.
func TestEnergyExtension(t *testing.T) {
	rows := plat().Energy()
	byApp := map[models.App]EnergyRow{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	for _, a := range []models.App{models.IMC, models.ASR, models.DIG} {
		if byApp[a].Improvement < 5 {
			t.Errorf("%s energy improvement %.1f×, expected the GPU to win clearly", a, byApp[a].Improvement)
		}
	}
	// FACE's modest speedup shrinks but does not erase the win.
	if byApp[models.FACE].Improvement < 1.5 {
		t.Errorf("FACE energy improvement %.1f×", byApp[models.FACE].Improvement)
	}
	for _, r := range rows {
		if r.CPUJoules <= 0 || r.GPUJoules <= 0 {
			t.Errorf("%s: non-positive energy", r.App)
		}
	}
}

// TestValidateDisaggServer: the analytic per-server capacity the TCO
// provisioning uses must agree with the discrete-event simulation of
// the full server data path (NIC team → PCIe → GPUs) within 10%.
func TestValidateDisaggServer(t *testing.T) {
	for _, r := range plat().ValidateDisaggServer() {
		if r.Ratio < 0.90 || r.Ratio > 1.10 {
			t.Errorf("%s: DES %.0f vs analytic %.0f QPS (ratio %.2f)", r.App, r.DESQPS, r.AnalyticQPS, r.Ratio)
		}
	}
}

// TestClusterExtension: the Disaggregated design's fabric hop costs
// microseconds against milliseconds of end-to-end latency — the
// latency price of disaggregation is negligible, which is why the TCO
// argument can win (Section 6.2).
func TestClusterExtension(t *testing.T) {
	for _, app := range []models.App{models.POS, models.DIG} {
		rows := plat().Cluster(app)
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", app, len(rows))
		}
		integ, disagg := rows[0].Result, rows[1].Result
		if integ.MeanNet != 0 {
			t.Errorf("%s: integrated design shows fabric time %.6f", app, integ.MeanNet)
		}
		if disagg.MeanNet <= 0 {
			t.Errorf("%s: disaggregated design shows no fabric time", app)
		}
		if disagg.MeanNet > disagg.MeanLat*0.05 {
			t.Errorf("%s: fabric hop %.4f is more than 5%% of latency %.4f", app, disagg.MeanNet, disagg.MeanLat)
		}
		if disagg.Completed == 0 || integ.Completed == 0 {
			t.Errorf("%s: empty simulation", app)
		}
	}
}

// TestFutureGPUs: newer generations help, and they help according to
// each service's bottleneck — Maxwell's compute-only bump barely moves
// the memory-bound FACE service, while Pascal's HBM2 moves it most.
func TestFutureGPUs(t *testing.T) {
	rows := plat().FutureGPUs()
	get := func(dev string, app models.App) float64 {
		for _, r := range rows {
			if r.App == app && strings.Contains(r.Device, dev) {
				return r.VsK40
			}
		}
		t.Fatalf("missing row %s/%s", dev, app)
		return 0
	}
	for _, app := range models.Apps {
		if v := get("P100", app); v < 1.0 {
			t.Errorf("%s regressed on P100: %.2f", app, v)
		}
	}
	if get("M40", models.FACE) > 1.3 {
		t.Errorf("memory-bound FACE should barely gain from M40's compute: %.2f", get("M40", models.FACE))
	}
	if get("M40", models.ASR) < get("M40", models.FACE) {
		t.Errorf("compute-bound ASR should gain more from M40 than FACE")
	}
	if get("P100", models.FACE) < 2 {
		t.Errorf("FACE should gain strongly from HBM2: %.2f", get("P100", models.FACE))
	}
}
