package experiments

import (
	"fmt"

	"djinn/internal/gpusim"
	"djinn/internal/models"
	"djinn/internal/workload"
	"djinn/internal/wsc"
)

// Validation experiment: the TCO study provisions the Disaggregated
// design from an analytic per-server throughput cap,
// min(GPUs × perGPU, NetBW/bytes, LinkBW/bytes). This cross-checks that
// cap against a full discrete-event simulation of one GPU server —
// queries traversing the NIC team, the PCIe complex, and 8 GPUs with 4
// MPS services each — so the provisioning inputs are backed by the
// same machinery as the performance figures.
type ValidationRow struct {
	App         models.App
	AnalyticQPS float64
	DESQPS      float64
	Ratio       float64
}

// ValidateDisaggServer compares analytic and simulated per-GPU-server
// throughput under the baseline PCIe v3 / 10GbE design point.
func (p Platform) ValidateDisaggServer() []ValidationRow {
	link := wsc.Table6()[0]
	var rows []ValidationRow
	for _, app := range models.Apps {
		spec := workload.Get(app)
		perGPU := p.ServerQPS(app, 1, OptimalMPSProcs, true, false).QPS
		analytic := wsc.GPUsPerDisaggServer * perGPU
		if cap := link.NetBW / spec.WireBytes(); cap < analytic {
			analytic = cap
		}
		if cap := link.LinkBW / spec.WireBytes(); cap < analytic {
			analytic = cap
		}
		cfg := gpusim.ServerConfig{
			Device:      p.GPU,
			GPUs:        wsc.GPUsPerDisaggServer,
			ProcsPerGPU: OptimalMPSProcs,
			MPS:         true,
			HostPCIeBW:  link.LinkBW,
			PCIeLatency: p.PCIeLatency,
			NetBW:       link.NetBW,
			NetLatency:  20e-6,
		}
		res := gpusim.SaturationQPS(cfg, p.batchWork(app, spec.BatchSize))
		rows = append(rows, ValidationRow{
			App: app, AnalyticQPS: analytic, DESQPS: res.QPS,
			Ratio: res.QPS / analytic,
		})
	}
	return rows
}

// RenderValidation prints the cross-check.
func (p Platform) RenderValidation() string {
	t := &table{header: []string{"app", "analytic QPS/server", "simulated QPS/server", "ratio"}}
	for _, r := range p.ValidateDisaggServer() {
		t.add(r.App.String(), f1(r.AnalyticQPS), f1(r.DESQPS), fmt.Sprintf("%.2f", r.Ratio))
	}
	return "Validation: analytic Disaggregated-server capacity vs discrete-event simulation\n" + t.String()
}
