package experiments

import (
	"djinn/internal/models"
	"djinn/internal/workload"
	"djinn/internal/wsc"
)

// AppPerf converts the platform's measured numbers for one application
// into the inputs the WSC provisioning model needs.
func (p Platform) AppPerf(app models.App) wsc.AppPerf {
	spec := workload.Get(app)
	// Unconstrained per-GPU throughput with the Table 3 batch and 4 MPS
	// processes (server-level bandwidth caps are applied by the
	// provisioning model itself).
	res := p.ServerQPS(app, 1, OptimalMPSProcs, true, false)
	return wsc.AppPerf{
		Name:          app.String(),
		CPUQPSPerCore: 1 / p.CPUDNNTime(app),
		GPUQPS:        res.QPS,
		WireBytes:     spec.WireBytes(),
	}
}

// Table 5's workload mixes.
var (
	MixedApps = models.Apps
	ImageApps = []models.App{models.IMC, models.DIG, models.FACE}
	NLPApps   = []models.App{models.POS, models.CHK, models.NER}
)

// MixNames lists Table 5's mixes in paper order.
var MixNames = []string{"MIXED", "IMAGE", "NLP"}

// Mix assembles a Table 5 workload mix with measured per-app numbers.
// Valid names: MIXED, IMAGE, NLP.
func (p Platform) Mix(name string) wsc.Mix {
	var apps []models.App
	switch name {
	case "MIXED":
		apps = MixedApps
	case "IMAGE":
		apps = ImageApps
	case "NLP":
		apps = NLPApps
	default:
		panic("experiments: unknown mix " + name)
	}
	m := wsc.Mix{Name: name}
	for _, a := range apps {
		m.Apps = append(m.Apps, p.AppPerf(a))
	}
	return m
}

// Fig15DNNFracs is the x-axis of Figure 15.
var Fig15DNNFracs = []float64{0.01, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}

// Fig15Point is one x-position of Figure 15: the TCO of the three WSC
// designs normalised to the CPU-only design.
type Fig15Point struct {
	Mix        string
	DNNFrac    float64
	Integrated float64 // TCO / CPU-only TCO (lower is better)
	Disagg     float64
}

// Fig15 reproduces Figure 15 for one Table 5 mix.
func (p Platform) Fig15(mixName string) []Fig15Point {
	mix := p.Mix(mixName)
	var pts []Fig15Point
	for _, f := range Fig15DNNFracs {
		s := wsc.Scenario{Mix: mix, DNNFrac: f, RefServers: 500}
		cpu := wsc.DesignTCO(wsc.CPUOnly, s).Total()
		pts = append(pts, Fig15Point{
			Mix: mixName, DNNFrac: f,
			Integrated: wsc.DesignTCO(wsc.IntegratedGPU, s).Total() / cpu,
			Disagg:     wsc.DesignTCO(wsc.DisaggregatedGPU, s).Total() / cpu,
		})
	}
	return pts
}

// Fig16Point is one design point of Figure 16: a TCO breakdown per WSC
// design when the WSC is grown to match the throughput the improved
// interconnect unlocks, plus that performance improvement itself (the
// "x" line in the paper's figure).
type Fig16Point struct {
	Mix       string
	Link      string
	PerfScale float64 // throughput relative to the PCIe v3/10GbE design
	// Breakdown per design, normalised to the baseline-link CPU-only
	// total.
	CPUOnly    wsc.Breakdown
	Integrated wsc.Breakdown
	Disagg     wsc.Breakdown
}

// Fig16 reproduces Figure 16 for a mix (the paper shows MIXED and NLP;
// IMAGE is not bandwidth-constrained). The workload is 100% DNN.
func (p Platform) Fig16(mixName string) []Fig16Point {
	mix := p.Mix(mixName)
	links := wsc.Table6()
	const refServers = 500
	// Baseline throughput: what the Disaggregated design delivers per
	// dollar... the paper's methodology: model the performance
	// improvement the better network gives the Disaggregated design,
	// then build all three designs to match that improved target.
	baseQPS := disaggDeliveredQPS(mix, links[0], refServers)
	var pts []Fig16Point
	var cpuBase float64
	for _, link := range links {
		scale := disaggDeliveredQPS(mix, link, refServers) / baseQPS
		s := wsc.Scenario{Mix: mix, DNNFrac: 1.0, RefServers: refServers, Link: link, PerfScale: scale}
		cpu := wsc.DesignTCO(wsc.CPUOnly, s)
		if cpuBase == 0 {
			cpuBase = cpu.Total()
		}
		pts = append(pts, Fig16Point{
			Mix: mixName, Link: link.Name, PerfScale: scale,
			CPUOnly:    scaleBreakdown(cpu, cpuBase),
			Integrated: scaleBreakdown(wsc.DesignTCO(wsc.IntegratedGPU, s), cpuBase),
			Disagg:     scaleBreakdown(wsc.DesignTCO(wsc.DisaggregatedGPU, s), cpuBase),
		})
	}
	return pts
}

// disaggDeliveredQPS returns the aggregate QPS the Disaggregated design
// can deliver per unit of GPU-pool spend under a link technology —
// used to express "NLP services bypass the bandwidth limitation and
// continue to scale" (Section 6.4): the per-GPU-server throughput cap
// rises with the network, so the same pool delivers more queries.
func disaggDeliveredQPS(mix wsc.Mix, link wsc.Interconnect, refServers float64) float64 {
	var total float64
	for _, a := range mix.Apps {
		perGPU := a.GPUQPS
		// Throughput one 8-GPU server can be fed under this link.
		cap8 := min2(8*perGPU, min2(link.NetBW, link.LinkBW)/a.WireBytes)
		total += cap8
	}
	return total
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func scaleBreakdown(b wsc.Breakdown, denom float64) wsc.Breakdown {
	return wsc.Breakdown{
		Servers:  b.Servers / denom,
		GPUs:     b.GPUs / denom,
		Network:  b.Network / denom,
		Facility: b.Facility / denom,
		Power:    b.Power / denom,
		OpsMaint: b.OpsMaint / denom,
	}
}
