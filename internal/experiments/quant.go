package experiments

import (
	"fmt"
	"runtime"
	"time"

	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// The quant experiment measures the precision-pluggable kernel layer:
// the same compiled plan run at each of the three precisions —
// float32 (reference blocked GEMM), float32-packed (cache-blocked
// panel kernels), and int8 (symmetric weight quantization at compile
// time, int32 accumulation, dequantize fused into the bias+ReLU
// epilogue). Throughput is instances/sec through Plan.Forward; the
// accuracy column is top-1 agreement between the int8 and float32
// outputs over fresh random inputs, the gate the int8 path must hold
// (>= 0.99 per net) to be eligible for serving.

// QuantConfig selects the apps, batch size and measurement effort.
type QuantConfig struct {
	Apps  []models.App
	Batch int
	// Workers is the intra-op GEMM parallelism every plan is compiled
	// with. Zero means GOMAXPROCS.
	Workers int
	// AgreeBatches is how many fresh random batches feed the top-1
	// agreement comparison. Zero means 2.
	AgreeBatches int
	// MinTime is the minimum measured wall time per precision; MinIters
	// the minimum forward passes. Zero means the defaults (100ms, 1).
	MinTime  time.Duration
	MinIters int
}

func (c QuantConfig) withDefaults() QuantConfig {
	if len(c.Apps) == 0 {
		c.Apps = models.Apps
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.AgreeBatches <= 0 {
		c.AgreeBatches = 2
	}
	if c.MinTime <= 0 {
		c.MinTime = 100 * time.Millisecond
	}
	if c.MinIters <= 0 {
		c.MinIters = 1
	}
	return c
}

// QuantCell is one application's row of the sweep.
type QuantCell struct {
	App   string `json:"app"`
	Batch int    `json:"batch"`

	F32QPS    float64 `json:"f32_qps"`    // instances/sec, float32 reference plan
	PackedQPS float64 `json:"packed_qps"` // instances/sec, float32-packed plan
	Int8QPS   float64 `json:"int8_qps"`   // instances/sec, int8 plan

	PackedSpeedup float64 `json:"packed_speedup"` // PackedQPS / F32QPS
	Int8Speedup   float64 `json:"int8_speedup"`   // Int8QPS / F32QPS

	F32Allocs    float64 `json:"f32_allocs"` // heap allocations per forward call
	PackedAllocs float64 `json:"packed_allocs"`
	Int8Allocs   float64 `json:"int8_allocs"`

	// Agreement is raw int8-vs-float32 top-1 agreement. On untrained
	// random weights, deep many-class nets emit near-uniform outputs, so
	// the float32 argmax can sit a micro-probability above its runner-up;
	// DecisiveAgreement excludes those near-ties (float32 top-1/top-2
	// margin < decisiveMargin), the regime trained nets operate in.
	Agreement         float64 `json:"top1_agreement"`
	Compared          int     `json:"instances_compared"`
	DecisiveAgreement float64 `json:"top1_agreement_decisive"`
	DecisiveCompared  int     `json:"decisive_instances"`
	MaxAbsErr         float64 `json:"max_abs_err"` // max |int8 - f32| over all compared outputs
}

// decisiveMargin is the float32 top-1/top-2 gap below which an
// instance counts as a near-tie for DecisiveAgreement.
const decisiveMargin = 1e-5

// top2 returns the argmax class of row and the gap to the runner-up.
func top2(row []float32) (int, float32) {
	best, second := 0, -1
	for j := range row {
		switch {
		case j == best:
		case row[j] > row[best]:
			second, best = best, j
		case second < 0 || row[j] > row[second]:
			second = j
		}
	}
	if second < 0 {
		return best, 0
	}
	return best, row[best] - row[second]
}

// QuantSweep compiles each application's network at all three
// precisions and measures throughput, allocations and int8 top-1
// agreement against the float32 reference.
func QuantSweep(cfg QuantConfig) []QuantCell {
	cfg = cfg.withDefaults()
	var cells []QuantCell
	for _, app := range cfg.Apps {
		net := models.BuildCached(app)
		in := tensor.New(append([]int{cfg.Batch}, net.InShape()...)...)
		rng := tensor.NewRNG(uint64(31*int(app) + cfg.Batch))

		f32 := net.CompileOpts(cfg.Batch, nn.CompileOpts{Workers: cfg.Workers})
		packed := net.CompileOpts(cfg.Batch, nn.CompileOpts{Workers: cfg.Workers, Precision: nn.Float32Packed})
		quant := net.CompileOpts(cfg.Batch, nn.CompileOpts{Workers: cfg.Workers, Precision: nn.Int8})

		cell := QuantCell{App: app.String(), Batch: cfg.Batch}
		var ref []float32
		for b := 0; b < cfg.AgreeBatches; b++ {
			rng.FillNorm(in.Data(), 0, 1)
			ref = append(ref[:0], f32.Forward(in).Data()...)
			got := quant.Forward(in).Data()
			per := len(ref) / cfg.Batch
			for i := 0; i < cfg.Batch; i++ {
				row, qrow := ref[i*per:(i+1)*per], got[i*per:(i+1)*per]
				ri, margin := top2(row)
				qi, _ := top2(qrow)
				for j := range row {
					if d := float64(row[j] - qrow[j]); d > cell.MaxAbsErr {
						cell.MaxAbsErr = d
					} else if -d > cell.MaxAbsErr {
						cell.MaxAbsErr = -d
					}
				}
				if ri == qi {
					cell.Agreement++
				}
				cell.Compared++
				if float64(margin) >= decisiveMargin {
					if ri == qi {
						cell.DecisiveAgreement++
					}
					cell.DecisiveCompared++
				}
			}
		}
		cell.Agreement /= float64(cell.Compared)
		if cell.DecisiveCompared > 0 {
			cell.DecisiveAgreement /= float64(cell.DecisiveCompared)
		}

		rng.FillNorm(in.Data(), 0, 1)
		f32FPS, f32Allocs := measure(cfg.MinTime, cfg.MinIters, func() { f32.Forward(in) })
		packedFPS, packedAllocs := measure(cfg.MinTime, cfg.MinIters, func() { packed.Forward(in) })
		int8FPS, int8Allocs := measure(cfg.MinTime, cfg.MinIters, func() { quant.Forward(in) })

		cell.F32QPS = f32FPS * float64(cfg.Batch)
		cell.PackedQPS = packedFPS * float64(cfg.Batch)
		cell.Int8QPS = int8FPS * float64(cfg.Batch)
		cell.PackedSpeedup = cell.PackedQPS / cell.F32QPS
		cell.Int8Speedup = cell.Int8QPS / cell.F32QPS
		cell.F32Allocs = f32Allocs
		cell.PackedAllocs = packedAllocs
		cell.Int8Allocs = int8Allocs
		cells = append(cells, cell)
	}
	return cells
}

// RenderQuant prints the precision comparison for all seven Tonic
// networks, the form `djinn-bench -exp quant` emits.
func RenderQuant() string {
	return RenderQuantCells(QuantSweep(QuantConfig{}))
}

// RenderQuantCells renders an already-run sweep (djinn-bench uses it
// to print the same cells it wrote as JSON).
func RenderQuantCells(cells []QuantCell) string {
	t := &table{header: []string{
		"app", "batch",
		"f32 q/s", "packed q/s", "int8 q/s",
		"packed x", "int8 x",
		"allocs f32/packed/int8",
		"top-1 agree", "decisive", "max |err|", "n",
	}}
	for _, c := range cells {
		t.add(c.App, fmt.Sprintf("%d", c.Batch),
			f1(c.F32QPS), f1(c.PackedQPS), f1(c.Int8QPS),
			f2(c.PackedSpeedup), f2(c.Int8Speedup),
			fmt.Sprintf("%s/%s/%s", f1(c.F32Allocs), f1(c.PackedAllocs), f1(c.Int8Allocs)),
			f3(c.Agreement), f3(c.DecisiveAgreement),
			fmt.Sprintf("%.1e", c.MaxAbsErr),
			fmt.Sprintf("%d/%d", c.DecisiveCompared, c.Compared))
	}
	return fmt.Sprintf(
		"Quant: precision-pluggable plans, float32 reference vs panel-packed vs int8 (GOMAXPROCS=%d)\n"+
			"int8: symmetric weight scales fixed at compile time, dynamic activation scales,\n"+
			"int32 accumulation, dequantize fused into the bias+ReLU epilogue.\n"+
			"\"decisive\" excludes instances whose float32 top-1/top-2 margin is under 1e-5 —\n"+
			"near-ties an untrained net's near-uniform output produces; the committed golden\n"+
			"fixtures (internal/models/testdata) pin the >= 0.99 top-1 serving gate in tier-1.\n%s",
		runtime.GOMAXPROCS(0), t.String())
}
