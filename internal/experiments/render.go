package experiments

import (
	"fmt"
	"strings"

	"djinn/internal/models"
	"djinn/internal/workload"
	"djinn/internal/wsc"
)

// Rendering helpers: every experiment can print itself as an aligned
// text table, the form cmd/djinn-bench emits.

type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func si(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fK", v/1e3)
	}
	return fmt.Sprintf("%.2f", v)
}

// RenderFig4 prints Figure 4's cycle breakdown.
func (p Platform) RenderFig4() string {
	t := &table{header: []string{"app", "DNN %", "pre %", "post %", "query secs"}}
	for _, r := range p.Fig4() {
		t.add(r.App.String(), f1(r.DNNFrac*100), f1(r.PreFrac*100), f1(r.PostFrac*100), fmt.Sprintf("%.4g", r.TotalSecs))
	}
	return "Figure 4: cycle breakdown per DNN application (Xeon core)\n" + t.String()
}

// RenderFig5 prints Figure 5's baseline speedups.
func (p Platform) RenderFig5() string {
	t := &table{header: []string{"app", "GPU/CPU speedup (batch 1)"}}
	for _, r := range p.Fig5() {
		t.add(r.App.String(), f1(r.Speedup))
	}
	return "Figure 5: throughput improvement, K40 over one Xeon core\n" + t.String()
}

// RenderFig6 prints Figure 6's profiler counters.
func (p Platform) RenderFig6() string {
	t := &table{header: []string{"app", "IPC/peak", "occupancy", "L1&shared util", "L2 util"}}
	for _, r := range p.Fig6() {
		t.add(r.App.String(), f2(r.Profile.IPCRatio), f2(r.Profile.Occupancy), f2(r.Profile.L1Util), f2(r.Profile.L2Util))
	}
	return "Figure 6: performance bottleneck analysis (kernel counters, batch 1)\n" + t.String()
}

// RenderFig7 prints the batching study for every application.
func (p Platform) RenderFig7() string {
	var b strings.Builder
	b.WriteString("Figure 7: throughput (a), occupancy (b), latency (c) vs batch size\n")
	for _, app := range models.Apps {
		t := &table{header: []string{"batch", "QPS", "occupancy", "latency ms"}}
		for _, pt := range p.Fig7(app) {
			t.add(fmt.Sprintf("%d", pt.Batch), f1(pt.QPS), f2(pt.Occupancy), f3(pt.Latency*1e3))
		}
		fmt.Fprintf(&b, "\n[%s]  (selected batch: %d, paper Table 3: %d)\n%s",
			app, p.PickBatch(app), workload.Get(app).BatchSize, t.String())
	}
	return b.String()
}

// RenderFig8 prints Figures 8 and 9 for every application.
func (p Platform) RenderFig8() string {
	var b strings.Builder
	b.WriteString("Figures 8 & 9: throughput and latency vs DNN service instances per GPU\n")
	for _, app := range models.Apps {
		t := &table{header: []string{"instances", "MPS QPS", "non-MPS QPS", "MPS lat ms", "non-MPS lat ms"}}
		for _, pt := range p.Fig8(app) {
			t.add(fmt.Sprintf("%d", pt.Instances), f1(pt.MPSQPS), f1(pt.NonMPSQPS),
				f3(pt.MPSLat*1e3), f3(pt.NonMPSLat*1e3))
		}
		fmt.Fprintf(&b, "\n[%s]\n%s", app, t.String())
	}
	return b.String()
}

// RenderFig10 prints the final single-GPU speedups.
func (p Platform) RenderFig10() string {
	t := &table{header: []string{"app", "batch", "speedup (batching + 4 MPS procs)"}}
	for _, r := range p.Fig10() {
		t.add(r.App.String(), fmt.Sprintf("%d", r.Batch), f1(r.Speedup))
	}
	return "Figure 10: optimised single-GPU throughput improvement over one Xeon core\n" + t.String()
}

// RenderFig11 prints the GPU-scaling study (Figure 11 PCIe-limited,
// Figure 12 unconstrained).
func (p Platform) RenderFig11(pcieLimited bool) string {
	name := "Figure 11: throughput vs number of GPUs (shared host PCIe)"
	if !pcieLimited {
		name = "Figure 12: throughput vs number of GPUs (no PCIe bandwidth limits)"
	}
	var b strings.Builder
	b.WriteString(name + "\n")
	for _, app := range models.Apps {
		t := &table{header: []string{"gpus", "QPS", "speedup vs CPU core", "GPU util", "PCIe util"}}
		for _, pt := range p.Fig11(app, pcieLimited) {
			t.add(fmt.Sprintf("%d", pt.GPUs), f1(pt.QPS), f1(pt.Speedup), f2(pt.GPUUtil), f2(pt.PCIeUtil))
		}
		fmt.Fprintf(&b, "\n[%s]\n%s", app, t.String())
	}
	return b.String()
}

// RenderFig13 prints the bandwidth requirements.
func (p Platform) RenderFig13() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: bandwidth required for peak throughput (PCIe v3 = %s/s, 10GbE = %s/s)\n",
		si(PCIeV3Bandwidth), si(TenGbEBandwidth))
	t := &table{header: []string{"app", "1 GPU", "2", "4", "8"}}
	for _, app := range models.Apps {
		pts := p.Fig13(app)
		byGPU := map[int]float64{}
		for _, pt := range pts {
			byGPU[pt.GPUs] = pt.BytesPS
		}
		t.add(app.String(), si(byGPU[1])+"/s", si(byGPU[2])+"/s", si(byGPU[4])+"/s", si(byGPU[8])+"/s")
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderFig15 prints the TCO study for all three mixes.
func (p Platform) RenderFig15() string {
	var b strings.Builder
	b.WriteString("Figure 15: TCO normalised to the CPU-only design (lower is better)\n")
	for _, mix := range MixNames {
		t := &table{header: []string{"DNN %", "Integrated GPU", "Disaggregated GPU"}}
		for _, pt := range p.Fig15(mix) {
			t.add(f1(pt.DNNFrac*100), f3(pt.Integrated), f3(pt.Disagg))
		}
		fmt.Fprintf(&b, "\n[%s workload]\n%s", mix, t.String())
	}
	return b.String()
}

// RenderFig16 prints the future-interconnect study.
func (p Platform) RenderFig16() string {
	var b strings.Builder
	b.WriteString("Figure 16: TCO impact of future networking technologies (normalised to baseline CPU-only)\n")
	for _, mix := range []string{"MIXED", "NLP"} {
		t := &table{header: []string{"design point", "perf ×", "CPU-only", "Integrated", "Disaggregated", "int: srv/gpu/net", "dis: srv/gpu/net"}}
		for _, pt := range p.Fig16(mix) {
			t.add(pt.Link, f2(pt.PerfScale),
				f2(pt.CPUOnly.Total()), f2(pt.Integrated.Total()), f2(pt.Disagg.Total()),
				fmt.Sprintf("%s/%s/%s", f2(pt.Integrated.Servers), f2(pt.Integrated.GPUs), f2(pt.Integrated.Network)),
				fmt.Sprintf("%s/%s/%s", f2(pt.Disagg.Servers), f2(pt.Disagg.GPUs), f2(pt.Disagg.Network)))
		}
		fmt.Fprintf(&b, "\n[%s workload, 100%% DNN]\n%s", mix, t.String())
	}
	return b.String()
}

// RenderTable1 prints the network architecture summary with measured
// parameter counts next to the paper's.
func RenderTable1() string {
	t := &table{header: []string{"type", "application", "network", "net type", "layers", "params (paper)", "params (built)"}}
	for _, a := range models.Apps {
		info := models.Table1(a)
		net := models.BuildCached(a)
		t.add(info.Service, info.Application, info.Network, string(info.NetType),
			fmt.Sprintf("%d", info.PaperLayers), si(float64(info.PaperParams)), si(float64(net.ParamCount())))
	}
	return "Table 1: Tonic Suite neural network architectures\n" + t.String()
}

// RenderTable3 prints the service workload summary.
func RenderTable3() string {
	t := &table{header: []string{"app", "input", "input KB", "output", "batch size"}}
	for _, s := range workload.All() {
		t.add(s.App.String(), s.InputDesc, f1(s.WireInBytes/1024), s.OutputDesc, fmt.Sprintf("%d", s.BatchSize))
	}
	return "Table 3: DjiNN service applications\n" + t.String()
}

// RenderTable4 prints the TCO cost factors.
func RenderTable4() string {
	cf := wsc.Table4()
	t := &table{header: []string{"component", "cost factor"}}
	t.add("300W GPU-capable server", fmt.Sprintf("$%.0f", cf.GPUCapableServerCost))
	t.add("High-end 240W GPU", fmt.Sprintf("$%.0f", cf.GPUCost))
	t.add("75W wimpy server", fmt.Sprintf("$%.0f", cf.WimpyServerCost))
	t.add("Networking equipment", fmt.Sprintf("$%.0f/10GbE NIC", cf.NICCost))
	t.add("WSC capital expenditures", fmt.Sprintf("$%.0f/Watt", cf.CapexPerWatt))
	t.add("Operational expenditures", fmt.Sprintf("$%.2f/Watt/month", cf.OpexPerWattMonth))
	t.add("Power Usage Efficiency (PUE)", fmt.Sprintf("%.1f", cf.PUE))
	t.add("Electricity", fmt.Sprintf("$%.3f per kWh", cf.ElectricityPerKWh))
	t.add("Interest rate", fmt.Sprintf("%.0f%%", cf.InterestRate*100))
	t.add("Server lifetime", fmt.Sprintf("%.0f months", cf.ServerLifetimeMonths))
	t.add("Maintenance/operations", fmt.Sprintf("%.0f%%/month", cf.MaintenanceFracMonth*100))
	return "Table 4: TCO parameters\n" + t.String()
}

// RenderTable5 prints the workload mixes.
func RenderTable5() string {
	t := &table{header: []string{"type", "description"}}
	t.add("MIXED", "Mix (IMC, DIG, FACE, ASR, POS, CHK, NER)")
	t.add("IMAGE", "Image processing (IMC, DIG, FACE)")
	t.add("NLP", "Natural language processing (POS, CHK, NER)")
	return "Table 5: DNN service workloads\n" + t.String()
}

// RenderTable6 prints the interconnect design points.
func RenderTable6() string {
	t := &table{header: []string{"design point", "link GB/s", "network GB/s", "NICs/server", "NIC cost", "server cost ×"}}
	for _, l := range wsc.Table6() {
		t.add(l.Name, f1(l.LinkBW/1e9), f1(l.NetBW/1e9), f1(l.NICsPerSrv),
			fmt.Sprintf("$%.0f", l.NICUnitCost), f2(l.ServerFactor))
	}
	return "Table 6: interconnect and network configurations\n" + t.String()
}

// RenderTable2 prints the experimental platform specification.
func (p Platform) RenderTable2() string {
	t := &table{header: []string{"component", "specification", "quantity"}}
	t.add("SYS-4U", "4U Intel Dual CPU Chassis, 8x PCIe 3.0 x16 slots", "1")
	t.add("CPU", p.CPU.Name+" package (6C, 2.10 GHz)", "2")
	t.add("HDD", "1TB 2.5\" HDD", "1")
	t.add("RAM", "16GB DDR3 1866 MHz ECC/Server Memory", "16")
	t.add("GPU", p.GPU.Name+" M-Class 12 GB PCIe", "8")
	t.add("(model)", fmt.Sprintf("host root complex %s/s, PCIe latency %.0fus", si(p.HostPCIeBW), p.PCIeLatency*1e6), "")
	return "Table 2: platform specifications\n" + t.String()
}
