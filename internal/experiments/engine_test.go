package experiments

import (
	"strings"
	"testing"
	"time"

	"djinn/internal/models"
)

func TestEngineSweepSmall(t *testing.T) {
	cells := EngineSweep(EngineConfig{
		Apps:     []models.App{models.DIG, models.POS},
		Batches:  []int{1, 4},
		Workers:  []int{1, 2},
		MinTime:  10 * time.Millisecond,
		MinIters: 2,
	})
	if len(cells) != 2*2*2 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	for _, c := range cells {
		if !c.Identical {
			t.Errorf("%s batch=%d workers=%d: plan output not bit-identical to seed", c.App, c.Batch, c.Workers)
		}
		if c.SeedQPS <= 0 || c.PlanQPS <= 0 {
			t.Errorf("%s batch=%d workers=%d: non-positive throughput (seed %.1f, plan %.1f)", c.App, c.Batch, c.Workers, c.SeedQPS, c.PlanQPS)
		}
		if c.PlanActBytes >= c.SeedActBytes {
			t.Errorf("%s batch=%d: plan activation bytes %d not below seed %d", c.App, c.Batch, c.PlanActBytes, c.SeedActBytes)
		}
		// The seed path allocates per-layer views every call; the serial
		// plan path must allocate (essentially) nothing.
		if c.Workers == 1 {
			if c.PlanAllocs >= c.SeedAllocs {
				t.Errorf("%s batch=%d: plan allocs/fwd %.1f not below seed %.1f", c.App, c.Batch, c.PlanAllocs, c.SeedAllocs)
			}
			if c.PlanAllocs > 2 {
				t.Errorf("%s batch=%d: serial plan path allocates %.1f per forward, want ~0", c.App, c.Batch, c.PlanAllocs)
			}
		}
	}
}

func TestRenderEngineSmokeFormat(t *testing.T) {
	// RenderEngine itself sweeps AlexNet and is too slow for the tier-1
	// suite; drive the rendering path with a small sweep instead.
	cells := EngineSweep(EngineConfig{
		Apps:     []models.App{models.DIG},
		Batches:  []int{1},
		Workers:  []int{1},
		MinTime:  time.Millisecond,
		MinIters: 1,
	})
	out := renderEngine(cells)
	for _, want := range []string{"speedup", "identical", "DIG", "act bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("engine table missing %q:\n%s", want, out)
		}
	}
}
