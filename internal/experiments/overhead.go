package experiments

import (
	"fmt"
	"time"

	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/trace"
	"djinn/internal/workload"
)

// OverheadResult is one tracing-overhead measurement: the same fleet
// driven with tracing off and with every query traced.
type OverheadResult struct {
	Off      workload.DriveResult // no query carries a trace ID
	On       workload.DriveResult // every query carries one (worst case)
	DeltaPct float64              // (off-on)/off throughput loss, percent
	// Sample is one traced query's merged cross-tier timeline (router +
	// replica spans under one ID), empty if none was retained.
	Sample trace.Trace
}

// TracingOverhead boots a replicas-wide in-process fleet running the
// paced bench model behind the router and drives it twice with the
// identical closed-loop workload: once untraced, once with a trace ID
// minted on every query — the worst case, since real deployments
// sample. The delta between the two runs is the end-to-end cost of the
// tracing plane: ID generation client-side, the extra wire header, the
// per-hop span records, and the bounded store inserts.
//
// The paced model makes each replica's capacity a sleep, not a forward
// pass, so the measured delta isolates the serving path the tracing
// code touches instead of drowning it in compute.
func TracingOverhead(replicas, workers int, per time.Duration) OverheadResult {
	run := func(traceEvery int) (workload.DriveResult, trace.Trace) {
		rt := router.New(router.Config{})
		defer rt.Close()
		servers := make([]*service.Server, 0, replicas)
		stores := []*trace.Store{rt.TraceStore()}
		for i := 0; i < replicas; i++ {
			srv := service.NewServer()
			srv.SetLogger(func(string, ...any) {})
			srv.SetTraceStore(trace.NewStore(fmt.Sprintf("replica-%d", i), trace.DefaultStoreSize))
			if err := srv.Register("bench", benchNet(1), service.AppConfig{
				BatchInstances: 2,
				BatchWindow:    2 * time.Millisecond,
				Workers:        1,
			}); err != nil {
				panic(err)
			}
			servers = append(servers, srv)
			stores = append(stores, srv.TraceStore())
			if err := rt.AddBackend(fmt.Sprintf("replica-%d", i), srv); err != nil {
				panic(err)
			}
		}
		defer func() {
			for _, srv := range servers {
				srv.Close()
			}
		}()
		res := workload.DriveClosedLoopOptions(rt, "bench", func(rng *tensor.RNG) []float32 {
			in := make([]float32, 8)
			rng.FillNorm(in, 0, 0.5)
			return in
		}, workload.DriveOptions{Workers: workers, Duration: per, TraceEvery: traceEvery})
		// Merge one query's router + replica views into a cross-tier
		// timeline while the stores are still alive. Start from the
		// router store's retained traces (the bounded stores evict
		// oldest-first, so an ID sampled early in the run may be gone);
		// a candidate only qualifies once a replica store contributed
		// spans beyond the router's own.
		var sample trace.Trace
		for _, cand := range rt.TraceStore().Slowest(16) {
			if tr, ok := trace.Merge(cand.ID, stores...); ok && len(tr.Spans) > len(cand.Spans) {
				sample = tr
				break
			}
		}
		return res, sample
	}

	off, _ := run(0)
	on, sample := run(1)
	r := OverheadResult{Off: off, On: on, Sample: sample}
	if off.QPS > 0 {
		r.DeltaPct = (off.QPS - on.QPS) / off.QPS * 100
	}
	return r
}

// RenderOverhead prints the tracing-overhead experiment: throughput and
// tail latency with tracing off vs every query traced, plus one merged
// cross-tier trace as the observability artifact. The acceptance target
// is a worst-case throughput delta under a few percent — tracing must
// be cheap enough to leave sampled-on in production, in the WSC spirit
// of measuring the fleet you actually run.
func (p Platform) RenderOverhead() string {
	const replicas, workers = 3, 8
	res := TracingOverhead(replicas, workers, 500*time.Millisecond)
	out := fmt.Sprintf("Extension: tracing overhead — %d replicas behind the router, %d closed-loop clients\n", replicas, workers)
	t := &table{header: []string{"tracing", "QPS", "ok", "p50", "p95", "p99"}}
	row := func(label string, r workload.DriveResult) {
		t.add(label, f1(r.QPS), fmt.Sprint(r.Queries),
			r.Latency.P50.Round(10*time.Microsecond).String(),
			r.Latency.P95.Round(10*time.Microsecond).String(),
			r.Latency.P99.Round(10*time.Microsecond).String())
	}
	row("off", res.Off)
	row("every query", res.On)
	out += t.String()
	out += fmt.Sprintf("throughput delta with tracing on every query: %.2f%% (target < 2%%; real deployments sample)\n", res.DeltaPct)
	if len(res.Sample.Spans) > 0 {
		out += "\nsample cross-tier trace (router + replica spans merged under one ID):\n"
		out += res.Sample.Format()
	}
	return out
}
