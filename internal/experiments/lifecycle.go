package experiments

import (
	"fmt"
	"time"

	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/workload"
)

// RenderLifecycle demonstrates the request lifecycle on the real
// in-process service rather than an analytic model: it loads the DIG
// model, drives it closed-loop at two per-query deadlines, and prints
// the lifecycle counters plus the per-stage latency breakdown the
// server exports through its "stats"/"latency" control verbs. The
// queue-wait column is the server-side overhead invisible before this
// instrumentation existed.
func RenderLifecycle() string {
	out := "Extension: request lifecycle on the live service (DIG, closed loop)\n"
	srv := service.NewServer()
	srv.SetLogger(func(string, ...any) {})
	defer srv.Close()
	spec := workload.Get(models.DIG)
	if err := srv.Register("dig", models.BuildCached(models.DIG), service.AppConfig{
		BatchInstances: spec.BatchSize * spec.Instances,
		BatchWindow:    2 * time.Millisecond,
		Workers:        2,
	}); err != nil {
		return out + err.Error() + "\n"
	}
	t := &table{header: []string{"deadline", "workers", "QPS", "ok", "expired", "shed",
		"queue p50", "assembly p50", "forward p50", "p95 total"}}
	for _, deadline := range []time.Duration{0, 2 * time.Millisecond} {
		res := workload.DriveClosedLoopDeadline(srv, models.DIG, "dig", 8, 400*time.Millisecond, deadline)
		sum, _ := srv.LatencyFor("dig")
		name := "none"
		if deadline > 0 {
			name = deadline.String()
		}
		t.add(name, "8", f1(res.QPS),
			fmt.Sprint(res.Queries), fmt.Sprint(res.Expired), fmt.Sprint(res.Shed),
			sum.QueueWait.P50.Round(time.Microsecond).String(),
			sum.BatchAssembly.P50.Round(time.Microsecond).String(),
			sum.Forward.P50.Round(time.Microsecond).String(),
			res.Latency.P95.Round(time.Microsecond).String())
	}
	out += t.String()
	out += "(a 2ms budget expires queries that a saturated worker pool leaves in the queue;\n" +
		" they are rejected before the forward pass and never occupy a batch slot)\n"
	return out
}
