package experiments

import (
	"testing"
	"time"

	"djinn/internal/testutil"
)

// TestControlPlaneRunAcceptance runs a scaled-down kill-mid-load
// experiment and checks its acceptance invariants: no window loses a
// query to a hard error, the controller re-places the killed replica's
// apps within the during-window, and the recovered window serves
// successfully.
func TestControlPlaneRunAcceptance(t *testing.T) {
	testutil.NoLeaks(t)
	if testing.Short() {
		t.Skip("multi-window fleet run")
	}
	res, err := ControlPlaneRun(3, 300*time.Millisecond, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct {
		name  string
		total int64
		errs  int64
	}{
		{"healthy", res.Before.Total.Issued(), res.Before.Total.Errors},
		{"kill", res.During.Total.Issued(), res.During.Total.Errors},
		{"recovered", res.After.Total.Issued(), res.After.Total.Errors},
	} {
		if w.total == 0 {
			t.Fatalf("%s window issued nothing", w.name)
		}
		if w.errs != 0 {
			t.Fatalf("%s window lost %d queries to hard errors", w.name, w.errs)
		}
	}
	if res.RebalanceTime <= 0 || res.RebalanceTime > time.Second {
		t.Fatalf("implausible rebalance time %v", res.RebalanceTime)
	}
	if res.Metrics.Dead != 1 {
		t.Fatalf("%d dead members at the end, want 1", res.Metrics.Dead)
	}
	if res.After.Total.Queries == 0 {
		t.Fatal("recovered window served nothing")
	}
}
