package experiments

import (
	"math"
	"testing"

	"djinn/internal/models"
)

// This file is the reproduction gate: one test per table/figure
// asserting that the paper's qualitative results — who wins, by roughly
// what factor, where crossovers fall — hold on the models. Measured
// values are recorded in EXPERIMENTS.md.

func plat() Platform { return DefaultPlatform() }

func fig4Rows(t *testing.T) map[models.App]Fig4Row {
	t.Helper()
	out := map[models.App]Fig4Row{}
	for _, r := range plat().Fig4() {
		out[r.App] = r
	}
	return out
}

// TestFig4CycleBreakdown: image tasks are almost entirely DNN, ASR is
// roughly half, NLP about two thirds.
func TestFig4CycleBreakdown(t *testing.T) {
	rows := fig4Rows(t)
	for _, a := range []models.App{models.IMC, models.DIG, models.FACE} {
		if f := rows[a].DNNFrac; f < 0.90 {
			t.Errorf("%s DNN fraction %.2f, paper shows ~all cycles in the DNN", a, f)
		}
	}
	if f := rows[models.ASR].DNNFrac; f < 0.40 || f > 0.60 {
		t.Errorf("ASR DNN fraction %.2f, paper shows about half", f)
	}
	for _, a := range []models.App{models.POS, models.CHK, models.NER} {
		if f := rows[a].DNNFrac; f < 0.60 || f > 0.80 {
			t.Errorf("%s DNN fraction %.2f, paper shows more than two thirds", a, f)
		}
	}
}

// TestFig5BaselineSpeedups: ASR ≈120×, networks with >30M parameters
// above 20×, NLP around 7×.
func TestFig5BaselineSpeedups(t *testing.T) {
	rows := map[models.App]float64{}
	for _, r := range plat().Fig5() {
		rows[r.App] = r.Speedup
	}
	if s := rows[models.ASR]; s < 95 || s > 145 {
		t.Errorf("ASR baseline speedup %.0f, paper reports ≈120×", s)
	}
	for _, a := range []models.App{models.IMC, models.FACE, models.ASR} {
		if rows[a] < 20 {
			t.Errorf("%s (>30M params) speedup %.0f, paper reports above 20×", a, rows[a])
		}
	}
	for _, a := range []models.App{models.POS, models.CHK, models.NER} {
		if s := rows[a]; s < 5 || s > 11 {
			t.Errorf("%s speedup %.1f, paper reports around 7×", a, s)
		}
	}
	if rows[models.DIG] < 10 {
		t.Errorf("DIG speedup %.0f implausibly low", rows[models.DIG])
	}
}

// TestFig6BottleneckAnalysis: NLP tasks under 20%% occupancy, ASR above
// 60%%; IPC tracks occupancy; bandwidth utilisation low everywhere.
func TestFig6BottleneckAnalysis(t *testing.T) {
	rows := map[models.App]Fig6Row{}
	for _, r := range plat().Fig6() {
		rows[r.App] = r
	}
	for _, a := range []models.App{models.POS, models.CHK, models.NER} {
		if occ := rows[a].Profile.Occupancy; occ > 0.25 {
			t.Errorf("%s occupancy %.2f, paper shows under 20%%", a, occ)
		}
	}
	if occ := rows[models.ASR].Profile.Occupancy; occ < 0.60 {
		t.Errorf("ASR occupancy %.2f, paper shows above 90%%", occ)
	}
	// IPC correlates with occupancy: ASR's IPC ratio far above NLP's.
	if rows[models.ASR].Profile.IPCRatio < 3*rows[models.POS].Profile.IPCRatio {
		t.Errorf("IPC should track occupancy: ASR %.2f vs POS %.2f",
			rows[models.ASR].Profile.IPCRatio, rows[models.POS].Profile.IPCRatio)
	}
	// No application is limited by on-chip memory bandwidth.
	for a, r := range rows {
		if r.Profile.L1Util > 0.8 || r.Profile.L2Util > 0.8 {
			t.Errorf("%s on-chip bandwidth util (%.2f, %.2f) should be well below peak", a, r.Profile.L1Util, r.Profile.L2Util)
		}
	}
}

// TestFig7BatchingShapes: throughput rises then plateaus; occupancy is
// non-decreasing; latency explodes only at large batch; per-app gains
// match the paper (≥15× for NLP, ≈5× for IMC, small for ASR).
func TestFig7BatchingShapes(t *testing.T) {
	p := plat()
	gain := func(app models.App) float64 {
		pts := p.Fig7(app)
		best := 0.0
		for _, pt := range pts {
			if pt.QPS > best {
				best = pt.QPS
			}
		}
		return best / pts[0].QPS
	}
	if g := gain(models.POS); g < 8 {
		t.Errorf("POS batching gain %.1f, paper reports over 15×", g)
	}
	if g := gain(models.IMC); g < 2 || g > 12 {
		t.Errorf("IMC batching gain %.1f, paper reports ≈5×", g)
	}
	if g := gain(models.ASR); g > 2.0 {
		t.Errorf("ASR batching gain %.1f, paper reports a small gain", g)
	}
	// Occupancy non-decreasing in batch for every app.
	for _, app := range models.Apps {
		pts := p.Fig7(app)
		for i := 1; i < len(pts); i++ {
			if pts[i].Occupancy < pts[i-1].Occupancy-0.02 {
				t.Errorf("%s occupancy fell from %.2f to %.2f at batch %d",
					app, pts[i-1].Occupancy, pts[i].Occupancy, pts[i].Batch)
			}
			if pts[i].Latency < pts[i-1].Latency*0.99 {
				t.Errorf("%s latency fell with batch size at %d", app, pts[i].Batch)
			}
		}
	}
}

// TestFig7PickBatchNearTable3: the knee-selection heuristic should land
// within 4× of the paper's chosen batch size for every application.
func TestFig7PickBatchNearTable3(t *testing.T) {
	p := plat()
	want := map[models.App]int{
		models.IMC: 16, models.DIG: 16, models.FACE: 2,
		models.ASR: 2, models.POS: 64, models.CHK: 64, models.NER: 64,
	}
	for app, paper := range want {
		got := p.PickBatch(app)
		switch app {
		case models.FACE, models.DIG:
			// Documented divergences (EXPERIMENTS.md): our model
			// amortises FACE's locally-connected weight traffic across
			// the batch so its knee sits past the paper's 2; DIG's
			// 100-image queries saturate the GPU almost immediately so
			// its knee sits before the paper's 16. Sanity-check only.
			if got < 1 || got > 256 {
				t.Errorf("%s: selected batch %d out of range", app, got)
			}
			t.Logf("%s: selected batch %d vs paper's %d (expected divergence, see EXPERIMENTS.md)", app, got, paper)
		default:
			ratio := float64(got) / float64(paper)
			if ratio > 4.5 || ratio < 0.2 {
				t.Errorf("%s: selected batch %d vs paper's %d", app, got, paper)
			}
		}
	}
}

// TestFig8MPSConcurrency: with MPS, throughput at 16 instances is at
// least as high as 1 instance and beats time-sharing; at 16 instances
// MPS latency is meaningfully lower (paper: up to 3×).
func TestFig8MPSConcurrency(t *testing.T) {
	p := plat()
	maxGain := 0.0
	for _, app := range []models.App{models.POS, models.IMC, models.FACE, models.DIG} {
		pts := p.Fig8(app)
		first, last := pts[0], pts[len(pts)-1]
		if last.MPSQPS < first.MPSQPS*0.9 {
			t.Errorf("%s MPS throughput fell with instances: %.0f → %.0f", app, first.MPSQPS, last.MPSQPS)
		}
		if last.MPSQPS < last.NonMPSQPS*0.95 {
			t.Errorf("%s at 16 instances: MPS %.0f below time-sharing %.0f", app, last.MPSQPS, last.NonMPSQPS)
		}
		if last.MPSLat > last.NonMPSLat {
			t.Errorf("%s at 16 instances: MPS latency %.4f above time-sharing %.4f", app, last.MPSLat, last.NonMPSLat)
		}
		if g := last.MPSQPS / first.MPSQPS; g > maxGain {
			maxGain = g
		}
	}
	// "Up to a 6× throughput improvement with concurrent service
	// execution": require a substantial best-case gain.
	if maxGain < 1.5 {
		t.Errorf("best MPS concurrency gain %.2f; paper reports up to 6×", maxGain)
	}
	t.Logf("best MPS concurrency gain: %.2fx (paper: up to 6x)", maxGain)
}

// TestFig9LatencyReduction: at 16 instances, MPS cuts latency vs
// time-sharing for the low-occupancy services (paper: up to 3×).
func TestFig9LatencyReduction(t *testing.T) {
	p := plat()
	best := 0.0
	for _, app := range []models.App{models.POS, models.CHK, models.NER, models.IMC} {
		pts := p.Fig8(app)
		last := pts[len(pts)-1]
		if r := last.NonMPSLat / last.MPSLat; r > best {
			best = r
		}
	}
	if best < 1.5 {
		t.Errorf("best MPS latency reduction %.2f×, paper reports up to 3×", best)
	}
	t.Logf("best MPS latency reduction at 16 instances: %.2fx (paper: up to 3x)", best)
}

// TestFig10OptimisedSpeedups: over 100× for all but FACE (≈40×); NLP
// lifted from ≈7× to over 120×.
func TestFig10OptimisedSpeedups(t *testing.T) {
	for _, r := range plat().Fig10() {
		switch r.App {
		case models.FACE:
			if r.Speedup < 28 || r.Speedup > 65 {
				t.Errorf("FACE optimised speedup %.0f, paper reports ≈40×", r.Speedup)
			}
		case models.POS, models.CHK, models.NER:
			if r.Speedup < 120 {
				t.Errorf("%s optimised speedup %.0f, paper reports over 120×", r.App, r.Speedup)
			}
		default:
			if r.Speedup < 100 {
				t.Errorf("%s optimised speedup %.0f, paper reports over 100×", r.App, r.Speedup)
			}
		}
	}
}

// TestFig11GPUScaling: image and speech services scale near-linearly to
// 8 GPUs; NLP throughput plateaus around 4 GPUs because of PCIe.
func TestFig11GPUScaling(t *testing.T) {
	p := plat()
	scaling := func(app models.App, limited bool) float64 {
		pts := p.Fig11(app, limited)
		return pts[len(pts)-1].QPS / pts[0].QPS
	}
	for _, a := range []models.App{models.IMC, models.DIG, models.FACE, models.ASR} {
		if s := scaling(a, true); s < 7 {
			t.Errorf("%s scales %.1f× at 8 GPUs, paper shows near-linear", a, s)
		}
	}
	for _, a := range []models.App{models.POS, models.CHK, models.NER} {
		s := scaling(a, true)
		if s > 5 {
			t.Errorf("%s scales %.1f× at 8 GPUs, paper shows a plateau by 4 GPUs", a, s)
		}
		// The plateau: the last doubling adds almost nothing.
		pts := p.Fig11(a, true)
		if pts[7].QPS > pts[3].QPS*1.25 {
			t.Errorf("%s still gaining past 4 GPUs: %.0f → %.0f", a, pts[3].QPS, pts[7].QPS)
		}
	}
}

// TestFig12UnconstrainedScaling: without PCIe limits every application
// scales near-linearly, and 3 of the 7 reach ≈1000× over a CPU core at
// 8 GPUs.
func TestFig12UnconstrainedScaling(t *testing.T) {
	p := plat()
	near1000 := 0
	for _, app := range models.Apps {
		pts := p.Fig11(app, false)
		if s := pts[len(pts)-1].QPS / pts[0].QPS; s < 7.2 {
			t.Errorf("%s unconstrained scaling %.1f×, want near-linear", app, s)
		}
		sp := pts[len(pts)-1].Speedup
		if sp > 700 && sp < 1600 {
			near1000++
		}
	}
	if near1000 < 3 {
		t.Errorf("%d applications near 1000× at 8 GPUs, paper reports 3", near1000)
	}
}

// TestFig13BandwidthRequirements: NLP requirements blow past the PCIe
// v3 line; the computation-heavy tasks stay within reach of a ≥4 GB/s
// network.
func TestFig13BandwidthRequirements(t *testing.T) {
	p := plat()
	at8 := func(app models.App) float64 {
		pts := p.Fig13(app)
		return pts[len(pts)-1].BytesPS
	}
	for _, a := range []models.App{models.POS, models.CHK, models.NER} {
		if bw := at8(a); bw < PCIeV3Bandwidth {
			t.Errorf("%s needs %.1f GB/s at 8 GPUs, paper shows NLP far above the PCIe v3 line", a, bw/1e9)
		}
	}
	// The computation-heavy tasks are "not bound by the PCIe bandwidth":
	// their 8-GPU requirement fits inside the host's root complex.
	host := p.HostPCIeBW
	for _, a := range []models.App{models.IMC, models.DIG, models.FACE, models.ASR} {
		bw := at8(a)
		if bw > host {
			t.Errorf("%s needs %.1f GB/s, above the %.1f GB/s host root complex", a, bw/1e9, host/1e9)
		}
	}
	// "The theoretical throughput can be achieved by a network with a
	// bandwidth of at least 4GB/s" — the heaviest compute-bound task
	// sits in the single-to-low-double-digit GB/s range at 8 GPUs.
	maxHeavy := math.Max(math.Max(at8(models.IMC), at8(models.DIG)), math.Max(at8(models.FACE), at8(models.ASR)))
	if maxHeavy < 2e9 || maxHeavy > host {
		t.Errorf("heaviest compute-bound requirement %.1f GB/s outside [2, %.1f]", maxHeavy/1e9, host/1e9)
	}
	// Requirements grow linearly with GPU count.
	pts := p.Fig13(models.POS)
	if r := pts[len(pts)-1].BytesPS / pts[0].BytesPS; r < 7 {
		t.Errorf("POS requirement scaling %.1f×, want ≈8×", r)
	}
}

// TestFig15TCO: GPU designs beat CPU-only except near 0% DNN; the
// Disaggregated design wins for MIXED and NLP; NLP's ceiling is far
// below MIXED's; IMAGE has a crossover where Integrated pulls ahead.
func TestFig15TCO(t *testing.T) {
	p := plat()
	mixed := p.Fig15("MIXED")
	nlp := p.Fig15("NLP")
	img := p.Fig15("IMAGE")

	last := func(pts []Fig15Point) Fig15Point { return pts[len(pts)-1] }

	// Max improvements: MIXED substantial (paper: up to 20×; this
	// model's ceiling is bounded by integer pool granularity at 500
	// reference servers — see EXPERIMENTS.md), NLP modest (paper: 4×).
	mixedImp := 1 / last(mixed).Disagg
	nlpImp := 1 / last(nlp).Disagg
	if mixedImp < 3.5 {
		t.Errorf("MIXED disaggregated improvement %.1f×, paper reports up to 20×", mixedImp)
	}
	if nlpImp < 2 || nlpImp > 6 {
		t.Errorf("NLP disaggregated improvement %.1f×, paper reports up to 4×", nlpImp)
	}
	if nlpImp > mixedImp {
		t.Errorf("NLP improvement (%.1f×) should be below MIXED's (%.1f×)", nlpImp, mixedImp)
	}

	// Disaggregated at or below Integrated for MIXED and NLP across the
	// sweep (paper: 10% to 2× better).
	for _, pts := range [][]Fig15Point{mixed, nlp} {
		for _, pt := range pts {
			if pt.Disagg > pt.Integrated*1.02 {
				t.Errorf("%s at %.0f%% DNN: disaggregated %.3f above integrated %.3f",
					pt.Mix, pt.DNNFrac*100, pt.Disagg, pt.Integrated)
			}
		}
	}

	// Both GPU designs improve on CPU-only once DNN work is substantial.
	for _, pt := range mixed {
		if pt.DNNFrac >= 0.3 && (pt.Integrated > 1 || pt.Disagg > 1) {
			t.Errorf("MIXED at %.0f%% DNN: GPU designs should beat CPU-only (int %.2f, dis %.2f)",
				pt.DNNFrac*100, pt.Integrated, pt.Disagg)
		}
	}

	// IMAGE crossover: some point in the upper half of the sweep where
	// Integrated is at or below Disaggregated (paper: beyond 72%).
	crossed := false
	for _, pt := range img {
		if pt.DNNFrac >= 0.4 && pt.Integrated <= pt.Disagg {
			crossed = true
			t.Logf("IMAGE crossover at %.0f%% DNN (int %.3f vs dis %.3f)", pt.DNNFrac*100, pt.Integrated, pt.Disagg)
			break
		}
	}
	if !crossed {
		t.Error("no IMAGE crossover found; paper reports one at 72% DNN")
	}
}

// TestFig16FutureInterconnects: better links unlock large NLP
// throughput; CPU-only must grow proportionally; Integrated NLP TCO
// drops with better bandwidth; Disaggregated growth is network-cost
// driven.
func TestFig16FutureInterconnects(t *testing.T) {
	p := plat()
	nlp := p.Fig16("NLP")
	if len(nlp) != 3 {
		t.Fatalf("%d design points, want 3", len(nlp))
	}
	v3, v4, qpi := nlp[0], nlp[1], nlp[2]
	if qpi.PerfScale < 3 || qpi.PerfScale > 8 {
		t.Errorf("QPI/400GbE NLP performance %.1f×, paper reports up to 4.5×", qpi.PerfScale)
	}
	if v4.PerfScale < 1.5 || v4.PerfScale > 2.5 {
		t.Errorf("PCIe v4 NLP performance %.1f×, expected ≈2× (bandwidth doubles)", v4.PerfScale)
	}
	// CPU-only TCO grows in proportion to the performance target.
	if math.Abs(qpi.CPUOnly.Total()/v3.CPUOnly.Total()-qpi.PerfScale) > 0.05*qpi.PerfScale {
		t.Errorf("CPU-only TCO should scale with performance: %.2f vs %.2f×",
			qpi.CPUOnly.Total()/v3.CPUOnly.Total(), qpi.PerfScale)
	}
	// "For the NLP workload, improving the bandwidth actually reduces
	// TCO slightly" (Integrated): fewer stranded GPUs.
	if qpi.Integrated.Total() >= v3.Integrated.Total() {
		t.Errorf("Integrated NLP TCO should fall with better interconnect: %.2f → %.2f",
			v3.Integrated.Total(), qpi.Integrated.Total())
	}
	// Disaggregated TCO growth stems primarily from networking costs.
	netGrowth := qpi.Disagg.Network - v3.Disagg.Network
	otherGrowth := (qpi.Disagg.Total() - qpi.Disagg.Network) - (v3.Disagg.Total() - v3.Disagg.Network)
	if netGrowth <= otherGrowth {
		t.Errorf("Disaggregated TCO growth should be network-driven: net +%.2f vs other +%.2f", netGrowth, otherGrowth)
	}
	// Both GPU designs stay far below the matched CPU-only design.
	for _, pt := range nlp {
		if pt.Integrated.Total() > pt.CPUOnly.Total()*0.8 || pt.Disagg.Total() > pt.CPUOnly.Total()*0.8 {
			t.Errorf("%s: GPU designs should remain well below CPU-only", pt.Link)
		}
	}
}

// TestRenderersProduceOutput smoke-tests every text renderer.
func TestRenderersProduceOutput(t *testing.T) {
	p := plat()
	outputs := []string{
		p.RenderFig4(), p.RenderFig5(), p.RenderFig6(), p.RenderFig10(),
		p.RenderFig13(), p.RenderFig15(), p.RenderFig16(),
		RenderTable1(), RenderTable3(), RenderTable4(), RenderTable5(), RenderTable6(),
	}
	for i, s := range outputs {
		if len(s) < 80 {
			t.Errorf("renderer %d produced suspiciously short output: %q", i, s)
		}
	}
}
