package experiments

import (
	"testing"
	"time"
)

// The obsfleet acceptance story: killing a replica mid-load must walk
// the burn-rate alert through pending → firing while the kill window
// is still open, and the alert must resolve only after the control
// plane re-placed the app.
func TestObsFleetAlertLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("obsfleet drives ~2s of open-loop load")
	}
	window := 300 * time.Millisecond
	res, err := ObsFleetRun(3, window)
	if err != nil {
		t.Fatal(err)
	}

	killEnd := res.KillAt.Add(2 * window)
	if res.FiringAt.IsZero() {
		t.Fatalf("alert never fired; timeline pending=%v events=%v", res.PendingAt, res.EventsByKind)
	}
	if res.FiringAt.Before(res.KillAt) || res.FiringAt.After(killEnd) {
		t.Errorf("alert fired at %v, want inside the kill window [%v, %v]",
			res.FiringAt, res.KillAt, killEnd)
	}
	if !res.PendingAt.IsZero() && res.FiringAt.Before(res.PendingAt) {
		t.Errorf("fired (%v) before pending (%v)", res.FiringAt, res.PendingAt)
	}
	if res.ReplacedAt.IsZero() {
		t.Fatal("control plane never re-placed the app after the kill")
	}
	if res.ResolvedAt.IsZero() {
		t.Fatal("alert never resolved after recovery")
	}
	if !res.ResolvedAt.After(res.ReplacedAt) {
		t.Errorf("alert resolved at %v before the re-placement at %v", res.ResolvedAt, res.ReplacedAt)
	}

	// The merged-histogram fleet p99 must not understate the tail the
	// way averaging per-replica p99s does.
	if res.FleetP99 <= 0 {
		t.Error("fleet p99 from merged histograms is zero")
	}

	// The observability plane itself must stay under the 2% budget.
	if res.OverheadFrac >= 0.02 {
		t.Errorf("collector self-time fraction = %.4f, want < 0.02", res.OverheadFrac)
	}

	// The journal must have recorded the whole story.
	for _, kind := range []string{"markdown", "placement", "alert", "member", "model"} {
		found := false
		for k, n := range res.EventsByKind {
			if string(k) == kind && n > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("journal has no %q events: %v", kind, res.EventsByKind)
		}
	}
}
