package experiments

import (
	"fmt"
	"time"

	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

// batchPacedLayer charges a fixed per-batch launch cost plus a
// per-instance cost, then passes its input through unchanged — the
// canonical accelerator cost shape behind the paper's batching result:
// a big batch amortises the launch, so throughput hinges on batch size
// while per-query latency grows with it. It is the model under the
// scheduler sweep: pacedLayer's flat per-instance time (the router
// sweep's capacity unit) has no batching tradeoff to schedule.
type batchPacedLayer struct {
	fixed, per time.Duration
}

func (batchPacedLayer) Name() string                                            { return "batch-paced" }
func (batchPacedLayer) Kind() string                                            { return "batch-paced" }
func (batchPacedLayer) OutShape(in []int) ([]int, error)                        { return in, nil }
func (batchPacedLayer) Params() []*nn.Param                                     { return nil }
func (batchPacedLayer) Kernels(in []int, batch int, ks []nn.Kernel) []nn.Kernel { return ks }
func (l batchPacedLayer) Forward(ctx *nn.Ctx, in, out *tensor.Tensor) {
	time.Sleep(l.fixed + time.Duration(in.Shape()[0])*l.per)
	copy(out.Data(), in.Data())
}

// schedNet is the scheduler sweep's model: the bench FC stack with a
// batch-paced stage, identical weights on every replica.
func schedNet(seed uint64, fixed, per time.Duration) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("sched-bench", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(batchPacedLayer{fixed: fixed, per: per}).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// SchedConfig is one contender in the scheduler sweep: a name and the
// AppConfig every replica registers the bench model under. A config
// with App.SLO > 0 runs the adaptive scheduler; otherwise it is one of
// the paper's static BatchInstances/BatchWindow choices.
type SchedConfig struct {
	Name string
	App  service.AppConfig
}

// SchedCell is one (config, offered load) measurement of the sweep.
type SchedCell struct {
	Config  string
	Rate    float64 // offered fleet-wide arrival rate, queries/sec
	Skipped bool    // ladder cut short after consecutive failures
	Res     workload.DriveResult
	// Stats sums the replica-side counter deltas over the measured
	// window; its ShedAdmission/ShedExpired split shows *where* a
	// config loses queries under overload. Router retries mean one
	// client-visible shed can appear as rejects on several replicas.
	Stats  service.Stats
	Batch  int           // adaptive: live batch size after the run (0 static)
	Window time.Duration // adaptive: live flush window after the run
	// Sustainable: the config held the p99 SLO while serving ≥99% of
	// offered queries. Deadline expiry censors the p99 of what *was*
	// served, so the goodput bound is what makes the check honest.
	Sustainable bool
}

// SchedSweepOptions sizes the sweep; RenderSched runs the full matrix,
// tests shrink it.
type SchedSweepOptions struct {
	Replicas int
	SLO      time.Duration // declared target p99, the grading line
	// Deadline is the per-query client deadline (0 = SLO). Keeping it a
	// notch above the SLO matters for measurement honesty: a deadline
	// exactly at the SLO censors the completed-latency distribution right
	// at the grading line, hiding every would-have-missed completion as
	// an expiry instead of a p99 miss.
	Deadline    time.Duration
	Rates       []float64     // offered-load ladder, queries/sec fleet-wide
	Warmup      time.Duration // unmeasured lead-in (adaptive climb, queue fill)
	Measure     time.Duration
	MaxInflight int
	Fixed, Per  time.Duration // batch-paced layer costs
}

// schedSustainable grades one cell: p99 within SLO and at most 1% of
// offered queries lost to shedding, expiry or errors.
func schedSustainable(slo time.Duration, r workload.DriveResult) bool {
	if r.Queries == 0 {
		return false
	}
	lost := r.Shed + r.Expired + r.Errors
	return r.Latency.P99 <= slo && float64(lost) <= 0.01*float64(r.Issued())
}

// statsDelta subtracts the warmup-era counters from a post-measure
// snapshot, leaving the measured window's worth.
func statsDelta(after, before service.Stats) service.Stats {
	return service.Stats{
		Queries:       after.Queries - before.Queries,
		Instances:     after.Instances - before.Instances,
		Batches:       after.Batches - before.Batches,
		Errors:        after.Errors - before.Errors,
		ShedAdmission: after.ShedAdmission - before.ShedAdmission,
		ShedExpired:   after.ShedExpired - before.ShedExpired,
		Expired:       after.Expired - before.Expired,
	}
}

// fleetStats sums one app's counters across the fleet's replicas.
func fleetStats(servers []*service.Server, name string) service.Stats {
	var sum service.Stats
	for _, srv := range servers {
		st, _ := srv.StatsFor(name)
		sum.Queries += st.Queries
		sum.Instances += st.Instances
		sum.Batches += st.Batches
		sum.Errors += st.Errors
		sum.ShedAdmission += st.ShedAdmission
		sum.ShedExpired += st.ShedExpired
		sum.Expired += st.Expired
	}
	return sum
}

// SchedSweep drives each scheduling config up the offered-load ladder
// on a fresh router fleet per cell: open-loop Poisson arrivals with
// per-query client deadlines, a warmup drive that is measured by nobody
// (it fills queues and lets the adaptive controller climb), then the
// measured drive. A config's ladder stops after two consecutive
// unsustainable rates — one to find the cliff, one to confirm it —
// since offered load only grows from there.
func SchedSweep(cfgs []SchedConfig, opts SchedSweepOptions) []SchedCell {
	if opts.Deadline <= 0 {
		opts.Deadline = opts.SLO
	}
	var cells []SchedCell
	payload := func(rng *tensor.RNG) []float32 {
		in := make([]float32, 8)
		rng.FillNorm(in, 0, 0.5)
		return in
	}
	for _, cfg := range cfgs {
		bad := 0
		for _, rate := range opts.Rates {
			if bad >= 2 {
				cells = append(cells, SchedCell{Config: cfg.Name, Rate: rate, Skipped: true})
				continue
			}
			rt := router.New(router.Config{})
			servers := make([]*service.Server, 0, opts.Replicas)
			for i := 0; i < opts.Replicas; i++ {
				srv := service.NewServer()
				srv.SetLogger(func(string, ...any) {})
				if err := srv.Register("bench", schedNet(1, opts.Fixed, opts.Per), cfg.App); err != nil {
					panic(err)
				}
				servers = append(servers, srv)
				if err := rt.AddBackend(fmt.Sprintf("replica-%d", i), srv); err != nil {
					panic(err)
				}
			}
			drive := func(d time.Duration) workload.DriveResult {
				return workload.DrivePoissonOptions(rt, "bench", payload, rate, opts.MaxInflight, workload.DriveOptions{
					Duration: d, Deadline: opts.Deadline, SLO: opts.SLO,
				})
			}
			if opts.Warmup > 0 {
				drive(opts.Warmup)
			}
			base := fleetStats(servers, "bench")
			res := drive(opts.Measure)
			cell := SchedCell{Config: cfg.Name, Rate: rate, Res: res}
			cell.Stats = statsDelta(fleetStats(servers, "bench"), base)
			if cfg.App.SLO > 0 {
				if info, ok := servers[0].SchedFor("bench"); ok {
					cell.Batch, cell.Window = info.Batch, info.Window
				}
			}
			rt.Close()
			for _, srv := range servers {
				srv.Close()
			}
			cell.Sustainable = schedSustainable(opts.SLO, res)
			if cell.Sustainable {
				bad = 0
			} else {
				bad++
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// SchedContenders is the sweep's standard field: the paper's static
// batch choices — each window sized to fill its batch at moderate
// load, the tuning a fixed config forces you to commit to — against
// the adaptive scheduler declaring only an SLO.
func SchedContenders(slo time.Duration) []SchedConfig {
	return []SchedConfig{
		{"static-1", service.AppConfig{BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1}},
		{"static-8", service.AppConfig{BatchInstances: 8, BatchWindow: 8 * time.Millisecond, Workers: 1}},
		{"static-32", service.AppConfig{BatchInstances: 32, BatchWindow: 32 * time.Millisecond, Workers: 1}},
		{"adaptive", service.AppConfig{BatchInstances: 64, Workers: 1, SLO: slo}},
	}
}

// maxSustained returns the highest rate each config sustained.
func maxSustained(cells []SchedCell) map[string]float64 {
	best := map[string]float64{}
	for _, c := range cells {
		if c.Sustainable && c.Rate > best[c.Config] {
			best[c.Config] = c.Rate
		}
	}
	return best
}

// RenderSched prints the scheduler study: adaptive batching plus
// admission control against the static configurations, on a 3-replica
// fleet serving the batch-paced bench model under open-loop Poisson
// load with per-query deadlines at the SLO.
func RenderSched() string {
	const slo = 50 * time.Millisecond
	cfgs := SchedContenders(slo)
	cells := SchedSweep(cfgs, SchedSweepOptions{
		Replicas:    3,
		SLO:         slo,
		Deadline:    slo + slo/5,
		Rates:       []float64{400, 800, 1600, 2400, 3600},
		Warmup:      4 * time.Second,
		Measure:     1500 * time.Millisecond,
		MaxInflight: 512,
		Fixed:       4 * time.Millisecond,
		Per:         800 * time.Microsecond,
	})
	out := "Extension: SLO-aware scheduler — adaptive batch/window + admission control vs static configs\n"
	out += fmt.Sprintf("(3-replica fleet, batch-paced model: 4ms launch + 0.8ms/instance, p99 SLO %s, client deadline 1.2x SLO, open-loop Poisson)\n", slo)
	t := &table{header: []string{"config", "offered q/s", "ok", "p99", "SLO att", "shed_adm", "shed_exp", "batch", "sustained"}}
	for _, c := range cells {
		if c.Skipped {
			t.add(c.Config, f0(c.Rate), "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		batch := "-"
		if c.Batch > 0 {
			batch = fmt.Sprint(c.Batch)
		}
		mark := "no"
		if c.Sustainable {
			mark = "yes"
		}
		t.add(c.Config, f0(c.Rate), fmt.Sprint(c.Res.Queries),
			c.Res.Latency.P99.Round(100*time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*c.Res.SLOAttainment()),
			fmt.Sprint(c.Stats.ShedAdmission), fmt.Sprint(c.Stats.ShedExpired),
			batch, mark)
	}
	out += t.String()

	best := maxSustained(cells)
	var bestStatic float64
	var bestStaticName string
	for _, cfg := range cfgs {
		if cfg.App.SLO > 0 {
			continue
		}
		if best[cfg.Name] > bestStatic {
			bestStatic, bestStaticName = best[cfg.Name], cfg.Name
		}
	}
	adaptive := best["adaptive"]
	switch {
	case bestStatic == 0 && adaptive == 0:
		out += "no config sustained the SLO at any offered rate\n"
	case bestStatic == 0:
		out += fmt.Sprintf("only the adaptive scheduler sustained the SLO (up to %.0f q/s)\n", adaptive)
	default:
		out += fmt.Sprintf("best static (%s) sustains %.0f q/s; adaptive sustains %.0f q/s — %.2fx\n",
			bestStaticName, bestStatic, adaptive, adaptive/bestStatic)
	}
	out += "(a static config commits to one batch/window point on the latency-throughput\n" +
		" frontier: small batches forfeit launch amortisation, big windows burn the SLO\n" +
		" on assembly wait. The scheduler walks the frontier — batch grows only while\n" +
		" p99 holds — and past fleet capacity its admission controller rejects before\n" +
		" the queue (shed_adm, not shed_exp), so what it serves still meets the SLO)\n"
	return out
}
