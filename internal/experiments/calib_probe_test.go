package experiments

import (
	"testing"

	"djinn/internal/models"
	"djinn/internal/workload"
)

// TestCalibrationProbe prints the model's headline numbers next to the
// paper's targets; run with -v when tuning the calibration constants.
func TestCalibrationProbe(t *testing.T) {
	p := DefaultPlatform()
	t.Logf("%-5s %12s %12s %8s %8s %8s %8s", "app", "cpuDNN", "gpuB1", "spdB1", "spdBat", "spdMPS4", "occB1")
	for _, app := range models.Apps {
		spec := workload.Get(app)
		cpu := p.CPUDNNTime(app)
		g1 := p.GPUBatchCycle(app, 1)
		sp1 := (1 / g1) / (1 / cpu)
		gb := p.GPUQPS(app, spec.BatchSize)
		spb := gb * cpu
		res := p.ServerQPS(app, 1, 4, true, true)
		spm := res.QPS * cpu
		prof := p.GPU.ProfileForward(spec.Kernels(spec.Instances * 1))
		t.Logf("%-5s %12.4g %12.4g %8.1f %8.1f %8.1f %8.2f", app, cpu, g1, sp1, spb, spm, prof.Occupancy)
	}
	for _, app := range []models.App{models.IMC, models.ASR, models.POS} {
		t.Logf("%s scaling (PCIe-limited, then unconstrained):", app)
		for _, n := range []int{1, 2, 4, 8} {
			lim := p.ServerQPS(app, n, 4, true, true)
			unl := p.ServerQPS(app, n, 4, true, false)
			t.Logf("  gpus=%d  qps=%10.1f (util %.2f, pcie %.2f)   unconstrained=%10.1f", n, lim.QPS, lim.GPUUtil, lim.PCIeUtil, unl.QPS)
		}
	}
}
