package experiments

import (
	"fmt"
	"runtime"
	"time"

	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// The engine experiment measures the compiled-execution-plan forward
// path (nn.Plan: pooled arenas, in-place elementwise layers, fused
// bias+ReLU epilogues, intra-op parallel GEMM) against the seed
// per-call path the repo started with: max-batch activation tensors
// with a fresh batch-limited view allocated per layer per call, serial
// kernels, no fusion. Both paths run the same layer arithmetic in the
// same order, so their outputs must be bit-identical; the plan's wins
// are allocations, memory footprint, fused passes and (given cores)
// parallel GEMM.

// EngineConfig selects the sweep grid and measurement effort.
type EngineConfig struct {
	Apps    []models.App
	Batches []int
	Workers []int // intra-op worker counts for the plan path
	// MinTime is the minimum measured wall time per contender; MinIters
	// the minimum forward passes. Zero means the defaults (150ms, 2).
	MinTime  time.Duration
	MinIters int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if len(c.Apps) == 0 {
		c.Apps = []models.App{models.IMC, models.DIG, models.POS}
	}
	if len(c.Batches) == 0 {
		c.Batches = []int{1, 8, 32}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4}
	}
	if c.MinTime <= 0 {
		c.MinTime = 150 * time.Millisecond
	}
	if c.MinIters <= 0 {
		c.MinIters = 2
	}
	return c
}

// EngineCell is one (app, batch, workers) point of the sweep.
type EngineCell struct {
	App     models.App
	Batch   int
	Workers int

	SeedQPS float64 // instances/sec, seed per-call path (always serial)
	PlanQPS float64 // instances/sec, compiled plan at Workers
	Speedup float64 // PlanQPS / SeedQPS

	SeedAllocs float64 // heap allocations per forward call
	PlanAllocs float64

	SeedActBytes int64 // activation memory: one buffer per layer (seed layout)
	PlanActBytes int64 // activation memory: plan arenas (ping-pong)

	Identical bool // plan output bit-identical to the seed output
}

// seedRunner replicates the pre-plan Runner forward path through the
// public nn API: per-layer max-batch tensors, a fresh FromSlice view
// per layer per call, Layer.Forward with a serial Ctx.
type seedRunner struct {
	net    *nn.Net
	ctx    *nn.Ctx
	shapes [][]int // input shape first, then each layer's output shape
	acts   []*tensor.Tensor
}

func newSeedRunner(n *nn.Net, maxBatch int) *seedRunner {
	r := &seedRunner{net: n, ctx: nn.NewCtx(1)}
	r.shapes = append([][]int{n.InShape()}, n.Shapes()...)
	for _, s := range r.shapes {
		r.acts = append(r.acts, tensor.New(append([]int{maxBatch}, s...)...))
	}
	return r
}

func (r *seedRunner) forward(input *tensor.Tensor) *tensor.Tensor {
	batch := input.Dim(0)
	cur := seedView(r.acts[0], r.shapes[0], batch)
	copy(cur.Data(), input.Data())
	for i, l := range r.net.Layers() {
		next := seedView(r.acts[i+1], r.shapes[i+1], batch)
		l.Forward(r.ctx, cur, next)
		cur = next
	}
	return cur
}

func seedView(t *tensor.Tensor, shape []int, batch int) *tensor.Tensor {
	per := 1
	for _, d := range shape {
		per *= d
	}
	return tensor.FromSlice(t.Data()[:batch*per], append([]int{batch}, shape...)...)
}

// measure times fn until both minimums are met and returns
// (forward calls per second, heap allocations per call).
func measure(minTime time.Duration, minIters int, fn func()) (float64, float64) {
	fn() // warm up: scratch growth, first-touch
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for {
		fn()
		iters++
		if iters >= minIters && time.Since(start) >= minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(iters)
	// ReadMemStats itself allocates nothing, but the timing calls may:
	// the two time.Since/Now pairs are alloc-free, so the delta is fn's.
	return float64(iters) / elapsed.Seconds(), allocs
}

func bitIdentical(a, b *tensor.Tensor) bool {
	x, y := a.Data(), b.Data()
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// EngineSweep runs the full grid. Seed throughput is measured once per
// (app, batch) and reused across the worker rows.
func EngineSweep(cfg EngineConfig) []EngineCell {
	cfg = cfg.withDefaults()
	var cells []EngineCell
	for _, app := range cfg.Apps {
		net := models.BuildCached(app)
		for _, batch := range cfg.Batches {
			input := tensor.New(append([]int{batch}, net.InShape()...)...)
			tensor.NewRNG(uint64(7*batch+int(app))).FillNorm(input.Data(), 0, 1)

			seed := newSeedRunner(net, batch)
			seedOut := tensor.New(append([]int{batch}, net.OutShape()...)...)
			copy(seedOut.Data(), seed.forward(input).Data())
			seedFPS, seedAllocs := measure(cfg.MinTime, cfg.MinIters, func() { seed.forward(input) })

			for _, workers := range cfg.Workers {
				plan := net.CompileOpts(batch, nn.CompileOpts{Workers: workers})
				planOut := plan.Forward(input)
				cell := EngineCell{
					App: app, Batch: batch, Workers: workers,
					Identical:    bitIdentical(seedOut, planOut),
					SeedActBytes: net.ActivationBytes(batch),
					PlanActBytes: plan.ActivationBytes(),
					SeedAllocs:   seedAllocs,
				}
				planFPS, planAllocs := measure(cfg.MinTime, cfg.MinIters, func() { plan.Forward(input) })
				cell.SeedQPS = seedFPS * float64(batch)
				cell.PlanQPS = planFPS * float64(batch)
				cell.Speedup = cell.PlanQPS / cell.SeedQPS
				cell.PlanAllocs = planAllocs
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// RenderEngine prints the seed-vs-plan engine comparison, the form
// `djinn-bench -exp engine` emits.
func RenderEngine() string {
	return renderEngine(EngineSweep(EngineConfig{}))
}

func renderEngine(cells []EngineCell) string {
	t := &table{header: []string{
		"app", "batch", "workers",
		"seed q/s", "plan q/s", "speedup",
		"seed allocs/fwd", "plan allocs/fwd",
		"act bytes seed", "act bytes plan", "act ratio",
		"identical",
	}}
	for _, c := range cells {
		t.add(c.App.String(),
			fmt.Sprintf("%d", c.Batch), fmt.Sprintf("%d", c.Workers),
			f1(c.SeedQPS), f1(c.PlanQPS), f2(c.Speedup),
			f1(c.SeedAllocs), f1(c.PlanAllocs),
			si(float64(c.SeedActBytes)), si(float64(c.PlanActBytes)),
			f2(float64(c.SeedActBytes)/float64(c.PlanActBytes)),
			fmt.Sprintf("%v", c.Identical))
	}
	return fmt.Sprintf(
		"Engine: compiled execution plans vs seed per-call forward path (GOMAXPROCS=%d)\n"+
			"seed: per-call views, serial GEMM, no fusion; plan: pooled arenas, in-place ops,\n"+
			"fused bias+ReLU, row-parallel GEMM at the given intra-op worker count.\n%s",
		runtime.GOMAXPROCS(0), t.String())
}
