package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"djinn/internal/interconnect"
)

func TestEthernetRates(t *testing.T) {
	if TenGbE.RawBytesPerSec() != 1.25e9 {
		t.Fatalf("10GbE = %v", TenGbE.RawBytesPerSec())
	}
	if FourHundredGbE.RawBytesPerSec() != 50e9 {
		t.Fatalf("400GbE = %v", FourHundredGbE.RawBytesPerSec())
	}
	if TenGbE.String() != "10GbE" {
		t.Fatalf("name %q", TenGbE)
	}
}

func TestTeamGoodput(t *testing.T) {
	// The paper's footnote: "Assuming 80% of theoretical peak can be
	// obtained, 16 × 1.25GB/s connection yields 16GB/s."
	team := Team{Gen: TenGbE, Count: 16}
	if got := team.GoodputBytesPerSec(); math.Abs(got-16e9) > 1 {
		t.Fatalf("16×10GbE goodput %v, want 16e9", got)
	}
}

func TestTeamToSaturatePaperDesignPoints(t *testing.T) {
	// 16 10GbE NICs saturate a PCIe v3 x16, as in the paper.
	if team := TeamToSaturate(TenGbE, interconnect.PCIe(3, 16).BytesPerSec); team.Count != 16 {
		t.Fatalf("10GbE team for PCIe v3: %d NICs, want 16", team.Count)
	}
	// 8 400GbE links saturate 12 QPI lanes, as in the paper.
	if team := TeamToSaturate(FourHundredGbE, interconnect.QPI(12).BytesPerSec); team.Count != 8 {
		t.Fatalf("400GbE team for QPI: %d, want 8", team.Count)
	}
	// The 40GbE/PCIe v4 pairing: the arithmetic yields 8 (the paper
	// quotes 9, a margin allowance).
	if team := TeamToSaturate(FortyGbE, interconnect.PCIe(4, 16).BytesPerSec); team.Count != 8 {
		t.Fatalf("40GbE team for PCIe v4: %d, want 8", team.Count)
	}
}

func TestTeamToSaturateProperty(t *testing.T) {
	// The returned team always covers the requested bandwidth, and
	// removing one NIC would not.
	f := func(bwRaw uint32) bool {
		bw := float64(bwRaw%400)*1e9 + 1e9
		team := TeamToSaturate(TenGbE, bw)
		per := TenGbE.RawBytesPerSec() * (1 - ProtocolOverhead)
		if team.GoodputBytesPerSec() < bw-1 {
			return false
		}
		return float64(team.Count-1)*per < bw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFabricCostReproducesTable4(t *testing.T) {
	// The hierarchical 500-leaf 10GbE fabric must average to the
	// paper's $750 per NIC.
	if got := TenGbEFabric().PerNIC(); math.Abs(got-750) > 0.01 {
		t.Fatalf("fabric per-NIC cost $%.2f, Table 4 says $750", got)
	}
}

func TestFabricCostScalesWithSwitchPrices(t *testing.T) {
	f := TenGbEFabric()
	f.CorePortPrice *= 2
	if f.PerNIC() <= 750 {
		t.Fatal("pricier core switches must raise the per-NIC cost")
	}
}

func TestScaledNICPrice(t *testing.T) {
	base := 750.0
	if ScaledNICPrice(base, TenGbE) != base {
		t.Fatal("10GbE price should be the base")
	}
	p40 := ScaledNICPrice(base, FortyGbE)
	p400 := ScaledNICPrice(base, FourHundredGbE)
	if p40 <= base || p400 <= p40 {
		t.Fatalf("prices should rise with line rate: %v, %v, %v", base, p40, p400)
	}
	// But cost per GB/s must fall with each generation.
	perGB := func(price float64, gen EthernetGen) float64 {
		return price / (gen.RawBytesPerSec() / 1e9)
	}
	if perGB(p40, FortyGbE) >= perGB(base, TenGbE) {
		t.Fatal("40GbE should be cheaper per GB/s than 10GbE")
	}
	if perGB(p400, FourHundredGbE) >= perGB(p40, FortyGbE) {
		t.Fatal("400GbE should be cheaper per GB/s than 40GbE")
	}
}
