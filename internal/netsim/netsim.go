// Package netsim models the datacenter network of Section 6: Ethernet
// generations, NIC teaming with the paper's 20% protocol-overhead
// assumption, and the hierarchical-switch cost amortisation behind
// Table 4's "$750 per 10GbE NIC" figure.
package netsim

import "fmt"

// EthernetGen is a link-speed generation.
type EthernetGen int

// Ethernet generations used in the paper's design points.
const (
	TenGbE         EthernetGen = 10
	FortyGbE       EthernetGen = 40
	FourHundredGbE EthernetGen = 400
)

// RawBytesPerSec returns the generation's theoretical line rate.
func (g EthernetGen) RawBytesPerSec() float64 { return float64(g) * 1e9 / 8 }

// String returns e.g. "10GbE".
func (g EthernetGen) String() string { return fmt.Sprintf("%dGbE", int(g)) }

// ProtocolOverhead is the paper's assumption for Ethernet efficiency:
// "assuming an additional protocol overhead of 20% on ethernet".
const ProtocolOverhead = 0.20

// Team is a bonded set of identical NICs on one server.
type Team struct {
	Gen   EthernetGen
	Count int
}

// GoodputBytesPerSec returns the team's usable bandwidth after protocol
// overhead.
func (t Team) GoodputBytesPerSec() float64 {
	return float64(t.Count) * t.Gen.RawBytesPerSec() * (1 - ProtocolOverhead)
}

// TeamToSaturate returns the smallest team of the generation whose
// goodput covers the given link bandwidth — how the paper sizes its
// network design points ("the PCIe v4 bus can be saturated by 9 teamed
// 40GbE connections", "8 teamed 400GbE connections are sufficient to
// saturate the QPI links").
func TeamToSaturate(gen EthernetGen, linkBytesPerSec float64) Team {
	per := gen.RawBytesPerSec() * (1 - ProtocolOverhead)
	n := int(linkBytesPerSec / per)
	if float64(n)*per < linkBytesPerSec {
		n++
	}
	if n < 1 {
		n = 1
	}
	return Team{Gen: gen, Count: n}
}

// FabricCost models the paper's network-pricing methodology: "500
// server leaf nodes connected to a hierarchical 10GbE network
// containing a mix of core and edge switches. We then average out the
// cost of those switches across the NICs installed in the servers to
// arrive at a cost estimate of $750 per NIC."
type FabricCost struct {
	LeafNodes     int
	NICsPerLeaf   int
	NICUnitPrice  float64 // bare adapter price
	EdgePortPrice float64 // per-port price of edge switches
	CorePortPrice float64 // per-port price of core switches
	Oversubscribe float64 // edge→core oversubscription ratio
}

// TenGbEFabric returns a parameterisation that reproduces Table 4's
// $750/NIC for a 500-leaf hierarchical 10GbE fabric.
func TenGbEFabric() FabricCost {
	return FabricCost{
		LeafNodes:     500,
		NICsPerLeaf:   1,
		NICUnitPrice:  300,
		EdgePortPrice: 300,
		CorePortPrice: 600,
		Oversubscribe: 4,
	}
}

// PerNIC returns the all-in cost per installed NIC: the adapter plus
// its amortised share of edge and core switch ports.
func (f FabricCost) PerNIC() float64 {
	if f.LeafNodes <= 0 || f.NICsPerLeaf <= 0 {
		panic("netsim: fabric needs leaves and NICs")
	}
	nics := float64(f.LeafNodes * f.NICsPerLeaf)
	// Every NIC consumes one edge port; edge switches uplink to the
	// core at 1/Oversubscribe ports per edge port.
	edgePorts := nics
	corePorts := nics / f.Oversubscribe
	total := nics*f.NICUnitPrice + edgePorts*f.EdgePortPrice + corePorts*f.CorePortPrice
	return total / nics
}

// ScaledNICPrice projects the per-NIC all-in price of a faster
// generation from the 10GbE baseline: switch silicon cost grows
// sub-linearly with line rate (cost per Gb/s falls roughly 35% per
// generation step), matching the Table 6 price assumptions.
func ScaledNICPrice(base float64, gen EthernetGen) float64 {
	steps := 0.0
	switch gen {
	case TenGbE:
		return base
	case FortyGbE:
		steps = 1
	case FourHundredGbE:
		steps = 2.5
	default:
		panic(fmt.Sprintf("netsim: unknown generation %v", gen))
	}
	ratio := float64(gen) / 10
	// price = base × speedup × (cost-per-bandwidth decay)^steps
	decay := 1.0
	for i := 0.0; i < steps; i++ {
		decay *= 0.65
	}
	return base * ratio * decay
}
