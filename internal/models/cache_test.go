package models

import (
	"sync"
	"testing"
)

// TestBuildCachedConcurrentFirstCall races many goroutines through the
// first BuildCached call for the same apps (run under -race via `make
// race`). The documented semantics: one build per app no matter how
// many callers arrive at once, every caller gets the same *nn.Net, and
// different apps do not serialise behind one another. Cheap DNN apps
// keep the test fast; the cache array is shared process state, so the
// test asserts identity rather than resetting it.
func TestBuildCachedConcurrentFirstCall(t *testing.T) {
	apps := []App{POS, CHK, NER, DIG}
	const callers = 8
	got := make([][]callResult, len(apps))
	var wg sync.WaitGroup
	for ai, a := range apps {
		got[ai] = make([]callResult, callers)
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(ai, c int, a App) {
				defer wg.Done()
				n := BuildCached(a)
				// Read shared state the builder wrote, so -race would
				// flag an unsynchronised publish.
				got[ai][c] = callResult{net: n, params: n.ParamCount()}
			}(ai, c, a)
		}
	}
	wg.Wait()
	for ai, a := range apps {
		ref := Build(a, 1)
		for c := 0; c < callers; c++ {
			r := got[ai][c]
			if r.net != got[ai][0].net {
				t.Fatalf("%s: caller %d got a different instance", a, c)
			}
			if r.params != ref.ParamCount() {
				t.Fatalf("%s: cached net has %d params, Build(a,1) has %d", a, r.params, ref.ParamCount())
			}
		}
	}
	// And the cached instance matches a direct seed-1 build's weights
	// (spot check one parameter of one app).
	cached := BuildCached(POS).Params()[0].W.Data()
	direct := Build(POS, 1).Params()[0].W.Data()
	for i := range direct {
		if cached[i] != direct[i] {
			t.Fatalf("POS cached weights diverge from Build(POS, 1) at %d", i)
		}
	}
}

type callResult struct {
	net    any
	params int
}

func TestBuildCachedOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildCached(NumApps) should panic")
		}
	}()
	BuildCached(NumApps)
}
