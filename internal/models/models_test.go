package models

import (
	"fmt"
	"math"
	"testing"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// TestTable1ParameterCounts asserts each reconstructed network lands
// within 10% of Table 1's published parameter count.
func TestTable1ParameterCounts(t *testing.T) {
	for _, a := range Apps {
		info := Table1(a)
		net := BuildCached(a)
		got := net.ParamCount()
		ratio := float64(got) / float64(info.PaperParams)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("%s (%s): %d params, Table 1 says %d (ratio %.3f)",
				a, info.Network, got, info.PaperParams, ratio)
		}
		t.Logf("%s: %d params (paper %d, ratio %.3f)", a, got, info.PaperParams, ratio)
	}
}

// TestTable1NetTypes asserts the CNN/DNN split of Table 1.
func TestTable1NetTypes(t *testing.T) {
	for _, a := range Apps {
		info := Table1(a)
		if got := BuildCached(a).Kind(); got != info.NetType {
			t.Errorf("%s: kind %s, want %s", a, got, info.NetType)
		}
	}
}

// TestLayerCounts checks engine layer counts against the per-network
// conventions Table 1 quotes: AlexNet, MNIST and Kaldi count every
// compute layer (activations included); DeepFace counts only weighted
// and pooling stages; SENNA counts linear/hardtanh/linear.
func TestLayerCounts(t *testing.T) {
	if got := BuildCached(IMC).LayerCount(); got != 22 {
		t.Errorf("AlexNet LayerCount=%d, want 22", got)
	}
	if got := BuildCached(DIG).LayerCount(); got != 7 {
		t.Errorf("MNIST LayerCount=%d, want 7", got)
	}
	if got := BuildCached(ASR).LayerCount(); got != 13 {
		t.Errorf("Kaldi LayerCount=%d, want 13", got)
	}
	for _, a := range []App{POS, CHK, NER} {
		if got := BuildCached(a).LayerCount(); got != 3 {
			t.Errorf("%s LayerCount=%d, want 3", a, got)
		}
	}
	// DeepFace: 8 counted stages (C1,M2,C3,L4,L5,L6,F7,F8) — the engine
	// additionally holds ReLU/dropout layers, so count weighted+pool.
	counted := 0
	for _, l := range BuildCached(FACE).Layers() {
		switch l.Kind() {
		case "conv", "local", "fc", "maxpool":
			counted++
		}
	}
	if counted != 8 {
		t.Errorf("DeepFace counted stages=%d, want 8", counted)
	}
}

// TestInputShapesMatchTable3Bytes checks that per-query input payloads
// match Table 3's published sizes: IMC 604KB, DIG 307KB, FACE 271KB,
// ASR 4594KB.
func TestInputShapesMatchTable3Bytes(t *testing.T) {
	kb := func(floats int) float64 { return float64(4*floats) / 1024 }
	cases := []struct {
		app    App
		floats int
		wantKB float64
	}{
		{IMC, 3 * 227 * 227, 604},
		{DIG, 100 * 28 * 28, 307},
		{FACE, 3 * 152 * 152, 271},
		{ASR, 548 * ASRFeatureDim, 4594},
	}
	for _, c := range cases {
		got := kb(c.floats)
		if math.Abs(got-c.wantKB) > 1.0 {
			t.Errorf("%s: input %.1f KB, Table 3 says %.0f KB", c.app, got, c.wantKB)
		}
	}
}

// TestForwardPassesRun runs one real inference through every network
// (ASR/NLP with a single frame/word) and checks the output distribution.
func TestForwardPassesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("big nets in -short mode")
	}
	rng := tensor.NewRNG(5)
	for _, a := range Apps {
		net := BuildCached(a)
		r := net.NewRunner(1)
		in := tensor.New(append([]int{1}, net.InShape()...)...)
		rng.FillNorm(in.Data(), 0, 0.3)
		out := r.Forward(in)
		n := out.Dim(1)
		var sum float64
		for j := 0; j < n; j++ {
			v := out.At(0, j)
			if math.IsNaN(float64(v)) {
				t.Fatalf("%s: NaN in output", a)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("%s: output sums to %v", a, sum)
		}
	}
}

// TestOutputClassCounts checks each classifier width.
func TestOutputClassCounts(t *testing.T) {
	want := map[App]int{
		IMC: 1000, DIG: 10, FACE: 4030, ASR: ASRSenones,
		POS: POSTags, CHK: CHKTags, NER: NERTags,
	}
	for a, w := range want {
		if got := BuildCached(a).OutShape()[0]; got != w {
			t.Errorf("%s: %d classes, want %d", a, got, w)
		}
	}
}

// TestBuildDeterministic: same seed ⇒ identical weights; different seed
// ⇒ different weights.
func TestBuildDeterministic(t *testing.T) {
	a := Build(DIG, 7)
	b := Build(DIG, 7)
	c := Build(DIG, 8)
	pa, pb, pc := a.Params()[0].W.Data(), b.Params()[0].W.Data(), c.Params()[0].W.Data()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestParseApp(t *testing.T) {
	for _, a := range Apps {
		got, err := ParseApp(a.String())
		if err != nil || got != a {
			t.Errorf("ParseApp(%s) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseApp("bogus"); err == nil {
		t.Error("ParseApp should reject unknown names")
	}
}

// TestWeightBytesFitK40 checks the paper's deployment constraint: all
// seven resident models must fit comfortably in one K40's 12 GB.
func TestWeightBytesFitK40(t *testing.T) {
	var total int64
	for _, a := range Apps {
		total += BuildCached(a).WeightBytes()
	}
	if total > 12<<30 {
		t.Fatalf("models need %d bytes, exceeding K40 12GB", total)
	}
	if total < 500<<20 {
		t.Fatalf("models only need %d bytes — parameter counts look wrong", total)
	}
}

// TestKernelsNonEmpty sanity-checks the cost descriptors every
// performance experiment depends on.
func TestKernelsNonEmpty(t *testing.T) {
	for _, a := range Apps {
		net := BuildCached(a)
		ks := net.Kernels(1)
		if len(ks) == 0 {
			t.Fatalf("%s: no kernels", a)
		}
		var flops float64
		for _, k := range ks {
			if k.FLOPs < 0 || k.Bytes() <= 0 {
				t.Fatalf("%s: bad kernel %+v", a, k)
			}
			flops += k.FLOPs
		}
		// Forward FLOPs must be at least 2× the parameter count (every
		// weight is used at least once as a multiply-add).
		if flops < 2*float64(net.ParamCount()) {
			t.Errorf("%s: only %.0f FLOPs for %d params", a, flops, net.ParamCount())
		}
	}
}

func TestSennaTaskWidthsDiffer(t *testing.T) {
	p := BuildCached(POS).OutShape()[0]
	c := BuildCached(CHK).OutShape()[0]
	n := BuildCached(NER).OutShape()[0]
	if p == c || c == n || p == n {
		t.Error("SENNA task tag sets should differ")
	}
}

// TestPlanMatchesRunnerAllNetworks is the golden equivalence gate for
// the compiled execution plans: across all seven Tonic networks, a
// plan's output (with in-place elementwise layers, fused bias+ReLU
// epilogues and intra-op parallel GEMM) must be bit-identical to the
// seed Runner forward path — not merely close.
func TestPlanMatchesRunnerAllNetworks(t *testing.T) {
	const batch = 2
	for _, a := range Apps {
		net := BuildCached(a)
		in := tensor.New(append([]int{batch}, net.InShape()...)...)
		tensor.NewRNG(uint64(a)+21).FillNorm(in.Data(), 0, 1)
		want := net.NewRunner(batch).Forward(in)
		plan := net.CompileOpts(batch, nn.CompileOpts{Workers: 2})
		got := plan.Forward(in)
		if got.Len() != want.Len() {
			t.Fatalf("%s: plan output %v, runner %v", a, got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("%s: out[%d] = %v (plan) vs %v (runner): not bit-identical", a, i, got.Data()[i], want.Data()[i])
			}
		}
		if pb, sb := plan.ActivationBytes(), net.ActivationBytes(batch); pb >= sb {
			t.Errorf("%s: plan activation bytes %d not below seed layout %d", a, pb, sb)
		}
	}
}

func BenchmarkBuildMNIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(DIG, uint64(i))
	}
}

var sinkOut *tensor.Tensor

// benchForward measures the compiled-plan forward path at the batch
// sizes the engine experiment sweeps. Run with -benchmem: steady-state
// allocs/op should be 0.
func benchForward(b *testing.B, a App) {
	net := BuildCached(a)
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			plan := net.Compile(batch)
			in := tensor.New(append([]int{batch}, net.InShape()...)...)
			tensor.NewRNG(1).FillNorm(in.Data(), 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkOut = plan.Forward(in)
			}
		})
	}
}

func BenchmarkForwardAlexNet(b *testing.B) { benchForward(b, IMC) }
func BenchmarkForwardMNIST(b *testing.B)   { benchForward(b, DIG) }
func BenchmarkForwardSENNA(b *testing.B)   { benchForward(b, POS) }
