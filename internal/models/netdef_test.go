package models

import (
	"bytes"
	"testing"

	"djinn/internal/nn"
)

// TestAllModelsRoundTripThroughNetDef exports each Table 1 network as a
// definition file and re-parses it: DjiNN's "just provide a model"
// extensibility claim must cover its own suite.
func TestAllModelsRoundTripThroughNetDef(t *testing.T) {
	for _, a := range Apps {
		orig := BuildCached(a)
		var def bytes.Buffer
		if err := orig.WriteDef(&def); err != nil {
			t.Fatalf("%s: export: %v", a, err)
		}
		parsed, err := nn.ParseNetDef(bytes.NewReader(def.Bytes()), 1)
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", a, err, def.String())
		}
		if parsed.ParamCount() != orig.ParamCount() {
			t.Errorf("%s: %d params after round trip, want %d", a, parsed.ParamCount(), orig.ParamCount())
		}
		if len(parsed.Layers()) != len(orig.Layers()) {
			t.Errorf("%s: %d layers after round trip, want %d", a, len(parsed.Layers()), len(orig.Layers()))
		}
		po, pp := orig.OutShape(), parsed.OutShape()
		if len(po) != len(pp) || po[0] != pp[0] {
			t.Errorf("%s: out shape %v != %v", a, pp, po)
		}
	}
}
