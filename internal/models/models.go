// Package models reconstructs the seven Tonic Suite network
// architectures of Table 1. Layer structure and parameter counts match
// the paper (AlexNet 60M / CNN / 22 layers, MNIST 60K / CNN / 7,
// DeepFace 120M / CNN / 8, Kaldi 30M / DNN / 13, SENNA 180K / DNN / 3);
// weights are synthesised deterministically since trained weights do not
// affect any throughput, bandwidth or TCO result in the paper.
package models

import (
	"fmt"
	"sync"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// App identifies one of the seven Tonic Suite applications.
type App int

// The Tonic Suite applications (Table 1).
const (
	IMC  App = iota // Image Classification (AlexNet)
	DIG             // Digit Recognition (MNIST)
	FACE            // Facial Recognition (DeepFace)
	ASR             // Automatic Speech Recognition (Kaldi)
	POS             // Part-of-Speech Tagging (SENNA)
	CHK             // Word Chunking (SENNA)
	NER             // Name Entity Recognition (SENNA)
	NumApps
)

// Apps lists all applications in Table 1 order.
var Apps = []App{IMC, DIG, FACE, ASR, POS, CHK, NER}

// String returns the paper's abbreviation for the app.
func (a App) String() string {
	switch a {
	case IMC:
		return "IMC"
	case DIG:
		return "DIG"
	case FACE:
		return "FACE"
	case ASR:
		return "ASR"
	case POS:
		return "POS"
	case CHK:
		return "CHK"
	case NER:
		return "NER"
	}
	return fmt.Sprintf("App(%d)", int(a))
}

// ParseApp converts an app abbreviation (case-sensitive, as printed by
// String) back to an App.
func ParseApp(s string) (App, error) {
	for _, a := range Apps {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("models: unknown application %q", s)
}

// Info is the Table 1 row for an application.
type Info struct {
	App         App
	Service     string // Image / Speech / NLP service grouping
	Application string // long name
	Network     string // source network
	NetType     nn.NetKind
	PaperLayers int // layer count as quoted in Table 1
	PaperParams int // parameter count as quoted in Table 1
}

// Table1 returns the paper's Table 1 metadata for the app.
func Table1(a App) Info {
	switch a {
	case IMC:
		return Info{a, "Image", "Image Classification", "AlexNet", nn.KindCNN, 22, 60_000_000}
	case DIG:
		return Info{a, "Image", "Digit Recognition", "MNIST", nn.KindCNN, 7, 60_000}
	case FACE:
		return Info{a, "Image", "Facial Recognition", "DeepFace", nn.KindCNN, 8, 120_000_000}
	case ASR:
		return Info{a, "Speech", "Automatic Speech Recognition", "Kaldi", nn.KindDNN, 13, 30_000_000}
	case POS:
		return Info{a, "NLP", "Part-of-Speech Tagging", "SENNA", nn.KindDNN, 3, 180_000}
	case CHK:
		return Info{a, "NLP", "Chunking", "SENNA", nn.KindDNN, 3, 180_000}
	case NER:
		return Info{a, "NLP", "Name Entity Recognition", "SENNA", nn.KindDNN, 3, 180_000}
	}
	panic("models: unknown app")
}

// Dimensions shared with the preprocessing pipelines.
const (
	// ASRFeatureDim is the per-frame spliced feature dimension. The
	// paper's Table 3 reports 4594 KB for 548 feature vectors, i.e.
	// 2146 float32s per frame: 42 base features (40 mel filterbank
	// energies + log-energy + pitch) × 3 (statics, Δ, ΔΔ) spliced over
	// a ±8 frame context window (17 frames), plus 4 utterance-level
	// normalisation statistics. 126·17 + 4 = 2146.
	ASRFeatureDim = 2146
	// ASRSenones is the number of tied-triphone output states.
	ASRSenones = 3000
	// SennaWindow is SENNA's context window (words).
	SennaWindow = 5
	// SennaWordDim is the per-word feature dimension (50-d embedding
	// plus 10 capitalisation/suffix discrete features).
	SennaWordDim = 60
	// SennaHidden is the SENNA hidden layer width.
	SennaHidden = 500
	// SennaCHKExtra is CHK's extra per-word input width: a 5-d embedding
	// of the word's POS tag (SENNA's chunker consumes POS output, which
	// is why the CHK app issues an internal POS request first).
	SennaCHKExtra = 5
	// SennaNERExtra is NER's extra per-word input width: four gazetteer
	// membership flags (person/location/organisation/misc), as in SENNA.
	SennaNERExtra = 4
	// POSTags is the Penn-Treebank tag count.
	POSTags = 45
	// CHKTags is the IOB2 chunk tag count.
	CHKTags = 23
	// NERTags is the IOB2 named-entity tag count.
	NERTags = 9
	// FaceClasses is the PubFig83+LFW celebrity identity count the
	// FACE application classifies over; the DeepFace classifier layer
	// itself is the published 4030-way layer (Table 1's 120M
	// parameters include it) and FACE uses its first 83 outputs.
	FaceClasses = 83
)

// Build constructs the network for an application with deterministic
// synthetic weights derived from seed.
func Build(a App, seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed ^ (uint64(a)+1)*0x9e3779b97f4a7c15)
	switch a {
	case IMC:
		return buildAlexNet(rng)
	case DIG:
		return buildMNIST(rng)
	case FACE:
		return buildDeepFace(rng)
	case ASR:
		return buildKaldi(rng)
	case POS:
		return buildSenna(rng, "senna-pos", POSTags, 0)
	case CHK:
		return buildSenna(rng, "senna-chk", CHKTags, SennaCHKExtra)
	case NER:
		return buildSenna(rng, "senna-ner", NERTags, SennaNERExtra)
	}
	panic("models: unknown app")
}

var cache [NumApps]struct {
	once sync.Once
	net  *nn.Net
}

// BuildCached returns a process-wide shared instance of the app's
// network (seed 1). This mirrors DjiNN's deployment: one in-memory model
// per application, shared read-only by all workers. DeepFace alone is
// ~475 MB of weights, so callers should prefer this over Build. It is
// also the cache behind the model-store export path (modelstore
// ExportTonic), so exported weight files are bit-identical to the nets
// a directly-seeded server builds.
//
// Concurrency: BuildCached is safe to call from any number of
// goroutines. Each app's network is built exactly once, by whichever
// caller arrives first; concurrent first calls for the SAME app block
// until that one build completes and then share its result, while
// first calls for DIFFERENT apps build in parallel (a per-app
// sync.Once, not a global lock — AlexNet's ~60M-parameter build must
// not serialise behind MNIST's). The returned *nn.Net is shared and
// must be treated as read-only; concurrent Forward calls need one
// Runner or compiled Plan per goroutine (see nn.Net.Compile).
func BuildCached(a App) *nn.Net {
	if a < 0 || a >= NumApps {
		panic(fmt.Sprintf("models: BuildCached(%d) out of range", int(a)))
	}
	c := &cache[a]
	c.once.Do(func() { c.net = Build(a, 1) })
	return c.net
}

// buildAlexNet reconstructs Krizhevsky et al.'s AlexNet: 22 layers,
// 60,965,224 parameters, 1000-way ImageNet classifier.
func buildAlexNet(rng *tensor.RNG) *nn.Net {
	n := nn.NewNet("alexnet", nn.KindCNN, 3, 227, 227)
	n.Add(nn.NewConv("conv1", rng, 3, 96, 11, nn.ConvOpt{Stride: 4})).
		Add(nn.NewReLU("relu1")).
		Add(nn.NewLRN("norm1", 5, 1e-4, 0.75, 1)).
		Add(nn.NewPool("pool1", nn.MaxPool, 3, 2, 0)).
		Add(nn.NewConv("conv2", rng, 96, 256, 5, nn.ConvOpt{Pad: 2, Groups: 2})).
		Add(nn.NewReLU("relu2")).
		Add(nn.NewLRN("norm2", 5, 1e-4, 0.75, 1)).
		Add(nn.NewPool("pool2", nn.MaxPool, 3, 2, 0)).
		Add(nn.NewConv("conv3", rng, 256, 384, 3, nn.ConvOpt{Pad: 1})).
		Add(nn.NewReLU("relu3")).
		Add(nn.NewConv("conv4", rng, 384, 384, 3, nn.ConvOpt{Pad: 1, Groups: 2})).
		Add(nn.NewReLU("relu4")).
		Add(nn.NewConv("conv5", rng, 384, 256, 3, nn.ConvOpt{Pad: 1, Groups: 2})).
		Add(nn.NewReLU("relu5")).
		Add(nn.NewPool("pool5", nn.MaxPool, 3, 2, 0)).
		Add(nn.NewFC("fc6", rng, 256*6*6, 4096)).
		Add(nn.NewReLU("relu6")).
		Add(nn.NewDropout("drop6", 0.5)).
		Add(nn.NewFC("fc7", rng, 4096, 4096)).
		Add(nn.NewReLU("relu7")).
		Add(nn.NewDropout("drop7", 0.5)).
		Add(nn.NewFC("fc8", rng, 4096, 1000)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// buildMNIST reconstructs the 7-layer, ~60K-parameter MNIST digit
// network (LeNet-style: convolution-heavy with compact classifier
// layers, as in LeNet-5).
func buildMNIST(rng *tensor.RNG) *nn.Net {
	n := nn.NewNet("mnist", nn.KindCNN, 1, 28, 28)
	n.Add(nn.NewConv("conv1", rng, 1, 20, 5, nn.ConvOpt{})).
		Add(nn.NewPool("pool1", nn.MaxPool, 2, 2, 0)).
		Add(nn.NewConv("conv2", rng, 20, 40, 5, nn.ConvOpt{})).
		Add(nn.NewPool("pool2", nn.MaxPool, 2, 2, 0)).
		Add(nn.NewFC("ip1", rng, 40*4*4, 56)).
		Add(nn.NewReLU("relu1")).
		Add(nn.NewFC("ip2", rng, 56, 10)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// buildDeepFace reconstructs Taigman et al.'s DeepFace: C1–M2–C3 shared
// convolutions, L4–L6 locally-connected layers (the untied weights are
// where the ~119M parameters live), F7–F8 fully connected. ReLUs follow
// each weighted layer but, as in the DeepFace paper, are not counted in
// the 8-layer figure.
func buildDeepFace(rng *tensor.RNG) *nn.Net {
	n := nn.NewNet("deepface", nn.KindCNN, 3, 152, 152)
	n.Add(nn.NewConv("C1", rng, 3, 32, 11, nn.ConvOpt{})). // 142×142
								Add(nn.NewReLU("relu1")).
								Add(nn.NewPool("M2", nn.MaxPool, 3, 2, 1)).          // 71×71
								Add(nn.NewConv("C3", rng, 32, 16, 9, nn.ConvOpt{})). // 63×63
								Add(nn.NewReLU("relu3")).
								Add(nn.NewLocal("L4", rng, 16, 63, 63, 16, 9, 1)). // 55×55
								Add(nn.NewReLU("relu4")).
								Add(nn.NewLocal("L5", rng, 16, 55, 55, 16, 7, 2)). // 25×25
								Add(nn.NewReLU("relu5")).
								Add(nn.NewLocal("L6", rng, 16, 25, 25, 16, 5, 1)). // 21×21
								Add(nn.NewReLU("relu6")).
								Add(nn.NewFC("F7", rng, 16*21*21, 4096)).
								Add(nn.NewReLU("relu7")).
								Add(nn.NewDropout("drop7", 0.5)).
								Add(nn.NewFC("F8", rng, 4096, 4030)).
								Add(nn.NewSoftmax("prob"))
	return n
}

// buildKaldi reconstructs the Kaldi hybrid acoustic model: 2146-d
// spliced features, six 2048-unit sigmoid hidden layers and a 3000-way
// senone softmax — 13 compute layers, ~31M parameters.
func buildKaldi(rng *tensor.RNG) *nn.Net {
	n := nn.NewNet("kaldi", nn.KindDNN, ASRFeatureDim)
	dims := []int{ASRFeatureDim, 2048, 2048, 2048, 2048, 2048, 2048}
	for i := 0; i < 6; i++ {
		n.Add(nn.NewFC(fmt.Sprintf("affine%d", i+1), rng, dims[i], dims[i+1])).
			Add(nn.NewSigmoid(fmt.Sprintf("sigmoid%d", i+1)))
	}
	n.Add(nn.NewFC("affine7", rng, 2048, ASRSenones)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// buildSenna reconstructs a SENNA window-approach tagger: a window of
// per-word features (plus task-specific extras — POS-tag embeddings for
// CHK, gazetteer flags for NER), one 500-unit HardTanh hidden layer and
// a per-task tag classifier — 3 layers, ~180K parameters.
func buildSenna(rng *tensor.RNG, name string, tags, extraPerWord int) *nn.Net {
	in := SennaWindow * (SennaWordDim + extraPerWord)
	n := nn.NewNet(name, nn.KindDNN, in)
	n.Add(nn.NewFC("l1", rng, in, SennaHidden)).
		Add(nn.NewHardTanh("hardtanh")).
		Add(nn.NewFC("l2", rng, SennaHidden, tags)).
		Add(nn.NewSoftmax("prob"))
	return n
}
