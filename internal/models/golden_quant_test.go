package models

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// The golden top-1 harness pins the precision layer's accuracy story
// to committed fixtures: for every Tonic network, the float32 plan's
// top-1 classes on a fixed random batch must match testdata/
// quant_top1.json exactly (float32 plans are bit-identical across
// worker counts, so this is deterministic), the int8 plan's top-1
// classes must match its fixture exactly (integer accumulation is
// exact, so int8 is deterministic too), and the two fixtures must
// agree on >= 99% of instances — the serving gate for Int8 pools.
//
// Regenerate after an intentional numerics change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/models -run TestGoldenTop1

const goldenTop1Path = "testdata/quant_top1.json"

type goldenTop1 struct {
	Batch int    `json:"batch"`
	Seed  uint64 `json:"seed"`
	F32   []int  `json:"f32_top1"`
	Int8  []int  `json:"int8_top1"`
}

func top1Classes(t *tensor.Tensor) []int {
	batch := t.Dim(0)
	data := t.Data()
	per := len(data) / batch
	out := make([]int, batch)
	for i := 0; i < batch; i++ {
		row := data[i*per : (i+1)*per]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

func goldenRun(a App, batch int, seed uint64) (f32, int8Top []int) {
	net := BuildCached(a)
	in := tensor.New(append([]int{batch}, net.InShape()...)...)
	tensor.NewRNG(seed).FillNorm(in.Data(), 0, 1)
	f32 = top1Classes(net.CompileOpts(batch, nn.CompileOpts{Workers: 2}).Forward(in))
	int8Top = top1Classes(net.CompileOpts(batch, nn.CompileOpts{Workers: 2, Precision: nn.Int8}).Forward(in))
	return f32, int8Top
}

func TestGoldenTop1AllNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("big nets in -short mode")
	}
	const batch = 4
	if os.Getenv("UPDATE_GOLDEN") != "" {
		fixtures := make(map[string]goldenTop1, len(Apps))
		for _, a := range Apps {
			seed := uint64(a)*100 + 17
			f32, i8 := goldenRun(a, batch, seed)
			fixtures[a.String()] = goldenTop1{Batch: batch, Seed: seed, F32: f32, Int8: i8}
		}
		buf, err := json.MarshalIndent(fixtures, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenTop1Path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTop1Path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenTop1Path)
	}

	buf, err := os.ReadFile(goldenTop1Path)
	if err != nil {
		t.Fatalf("reading golden fixtures (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	var fixtures map[string]goldenTop1
	if err := json.Unmarshal(buf, &fixtures); err != nil {
		t.Fatal(err)
	}
	for _, a := range Apps {
		want, ok := fixtures[a.String()]
		if !ok {
			t.Fatalf("%s: no golden fixture (regenerate with UPDATE_GOLDEN=1)", a)
		}
		f32, i8 := goldenRun(a, want.Batch, want.Seed)
		agree := 0
		for i := range f32 {
			if f32[i] != want.F32[i] {
				t.Errorf("%s: f32 top-1[%d] = %d, golden %d", a, i, f32[i], want.F32[i])
			}
			if i8[i] != want.Int8[i] {
				t.Errorf("%s: int8 top-1[%d] = %d, golden %d", a, i, i8[i], want.Int8[i])
			}
			if f32[i] == i8[i] {
				agree++
			}
		}
		if frac := float64(agree) / float64(len(f32)); frac < 0.99 {
			t.Errorf("%s: int8 top-1 agreement %.2f below the 0.99 serving gate", a, frac)
		}
	}
}
