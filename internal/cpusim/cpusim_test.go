package cpusim

import (
	"math"
	"testing"
	"testing/quick"

	"djinn/internal/nn"
)

func TestXeonSpec(t *testing.T) {
	c := XeonE5()
	// Ivy Bridge EP: 2.1 GHz × 16 SP FLOPs/cycle = 33.6 GFLOPS/core.
	if math.Abs(c.PeakFLOPS-33.6e9) > 1e6 {
		t.Fatalf("peak %.3g, want 33.6e9", c.PeakFLOPS)
	}
	if c.GemmEffMax <= 0 || c.GemmEffMax > 1 {
		t.Fatalf("implausible GEMM efficiency %v", c.GemmEffMax)
	}
}

func TestGemmKernelEfficiencyCurve(t *testing.T) {
	c := XeonE5()
	// A large GEMM approaches asymptotic efficiency...
	big := nn.Kernel{FLOPs: 1e9, GemmM: 1000, GemmN: 1000}
	tBig := c.KernelTime(big)
	effBig := big.FLOPs / tBig / c.PeakFLOPS
	if effBig < c.GemmEffMax*0.95 {
		t.Fatalf("large-GEMM efficiency %.2f, want ≈%.2f", effBig, c.GemmEffMax)
	}
	// ...while a small one falls well below it.
	small := nn.Kernel{FLOPs: 1e5, GemmM: 50, GemmN: 50}
	tSmall := c.KernelTime(small)
	effSmall := small.FLOPs / tSmall / c.PeakFLOPS
	if effSmall > c.GemmEffMax*0.2 {
		t.Fatalf("small-GEMM efficiency %.2f should collapse", effSmall)
	}
}

func TestPerCallGranularity(t *testing.T) {
	c := XeonE5()
	// Caffe's CPU conv loops per image: the same total FLOPs split into
	// 100 calls must be slower than one batched call.
	one := nn.Kernel{FLOPs: 1e8, GemmM: 100, GemmN: 100, Calls: 1}
	many := nn.Kernel{FLOPs: 1e8, GemmM: 100, GemmN: 100, Calls: 100}
	if c.KernelTime(many) <= c.KernelTime(one) {
		t.Fatal("per-call splitting should cost time")
	}
}

func TestLLCRoofline(t *testing.T) {
	c := XeonE5()
	// A kernel whose working set fits the LLC pays compute time only.
	cached := nn.Kernel{FLOPs: 1e6, BytesIn: 1e6, GemmM: 100, GemmN: 100}
	spill := nn.Kernel{FLOPs: 1e6, BytesIn: 1e9, GemmM: 100, GemmN: 100}
	tc := c.KernelTime(cached)
	ts := c.KernelTime(spill)
	wantStream := 1e9 / c.MemBW
	if ts < wantStream {
		t.Fatalf("spilling kernel %v faster than DRAM streaming %v", ts, wantStream)
	}
	if tc > ts/10 {
		t.Fatalf("cached kernel %v should be far faster than spilled %v", tc, ts)
	}
}

func TestElementwiseKernelPath(t *testing.T) {
	c := XeonE5()
	// An activation layer kernel (no GEMM dims) runs at ElemFLOPS, not
	// through the ATLAS curve.
	k := nn.Kernel{FLOPs: 8e6, Threads: 1 << 20}
	got := c.KernelTime(k)
	want := 8e6/c.ElemFLOPS + c.CallOverhead
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("elementwise time %v, want %v", got, want)
	}
}

func TestForwardTimeAdds(t *testing.T) {
	c := XeonE5()
	ks := []nn.Kernel{
		{FLOPs: 1e7, GemmM: 100, GemmN: 100},
		{FLOPs: 1e6, Threads: 1000},
	}
	sum := c.KernelTime(ks[0]) + c.KernelTime(ks[1])
	if got := c.ForwardTime(ks); math.Abs(got-sum) > 1e-15 {
		t.Fatalf("forward %v, want %v", got, sum)
	}
}

func TestScalarTime(t *testing.T) {
	c := XeonE5()
	if got := c.ScalarTime(2.5e9); math.Abs(got-1) > 1e-9 {
		t.Fatalf("2.5e9 ops should take 1 s, got %v", got)
	}
}

func TestKernelTimeMonotoneProperty(t *testing.T) {
	// More FLOPs never takes less time (same shape and traffic).
	c := XeonE5()
	f := func(aRaw, bRaw uint32) bool {
		a := float64(aRaw%1000000) + 1
		b := a + float64(bRaw%1000000)
		ka := nn.Kernel{FLOPs: a, GemmM: 64, GemmN: 64}
		kb := nn.Kernel{FLOPs: b, GemmM: 64, GemmN: 64}
		return c.KernelTime(kb) >= c.KernelTime(ka)-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTimePositive(t *testing.T) {
	c := XeonE5()
	f := func(flopsRaw, bytesRaw uint32, gemm bool) bool {
		k := nn.Kernel{FLOPs: float64(flopsRaw), BytesIn: float64(bytesRaw), Threads: 1}
		if gemm {
			k.GemmM, k.GemmN = 10, 10
		}
		tt := c.KernelTime(k)
		return tt > 0 && !math.IsInf(tt, 0) && !math.IsNaN(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
