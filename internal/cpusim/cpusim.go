// Package cpusim models the paper's CPU baseline: a single Intel Xeon
// E5-2620 v2 core running the Caffe+ATLAS DNN implementation (Section
// 4). Like the GPU model it consumes the per-layer kernel descriptors
// from internal/nn and applies a per-core roofline: dense-kernel compute
// at ATLAS efficiency versus DRAM streaming for working sets that spill
// the last-level cache. Figure 4's DNN-vs-rest cycle breakdown and every
// GPU-vs-CPU speedup in the paper (Figures 5 and 10) are ratios against
// this model.
package cpusim

import "djinn/internal/nn"

// CoreSpec describes one CPU core for the analytic model.
type CoreSpec struct {
	Name      string
	ClockHz   float64
	PeakFLOPS float64 // per-core single-precision peak (AVX)
	// GemmEffMax is the fraction of peak that ATLAS sustains on large
	// dense kernels; efficiency falls off for small problems following
	// eff = GemmEffMax · F/(F+EffHalfFLOPs), where F is the FLOPs of
	// one library call (Caffe's CPU path calls ATLAS once per image per
	// group for convolutions — Kernel.Calls).
	GemmEffMax float64
	// EffHalfFLOPs is the per-call problem size at which ATLAS reaches
	// half its asymptotic efficiency.
	EffHalfFLOPs float64
	// CallOverhead is the fixed cost of one library invocation
	// (dispatch, packing setup).
	CallOverhead float64
	// MemBW is the DRAM bandwidth one core can stream, bytes/s.
	MemBW float64
	// LLCBytes is the core's effective share of last-level cache; a
	// kernel whose working set fits here pays no DRAM time on repeated
	// passes.
	LLCBytes float64
	// ElemFLOPS is the throughput of simple element-wise layer loops
	// (activations, pooling, normalisation): vectorisable streaming
	// code, well below GEMM rates but far above scalar code.
	ElemFLOPS float64
	// ScalarFLOPS is the throughput of non-vectorised pre/post
	// processing code (feature extraction, Viterbi search, decoding).
	ScalarFLOPS float64
}

// XeonE5 returns the paper's baseline core: Intel Xeon E5-2620 v2
// (Ivy Bridge EP, 2.10 GHz, 256-bit AVX: 16 SP FLOPs/cycle).
func XeonE5() CoreSpec {
	const clock = 2.1e9
	return CoreSpec{
		Name:         "Intel Xeon E5-2620 v2 core",
		ClockHz:      clock,
		PeakFLOPS:    16 * clock, // 33.6 GFLOPS
		GemmEffMax:   0.72,
		EffHalfFLOPs: 2e6,
		CallOverhead: 1e-6,
		MemBW:        8e9,
		LLCBytes:     7.5e6, // 15 MB LLC shared by ~2 active contexts
		ElemFLOPS:    8e9,
		ScalarFLOPS:  2.5e9,
	}
}

// KernelTime returns the core's execution time for one kernel: the
// roofline maximum of ATLAS-efficiency compute and DRAM streaming time.
// Working sets that fit in the LLC pay no DRAM time (the whole SENNA
// model is ~700 KB, which is why the NLP nets see only ~7x from the
// GPU at batch 1 — the CPU baseline is already compute-bound and
// cache-resident).
func (c CoreSpec) KernelTime(k nn.Kernel) float64 {
	calls := float64(k.CallCount())
	var compute float64
	switch {
	case k.GemmM > 0 && k.GemmN > 0:
		// Dense kernel through ATLAS: the size-dependent efficiency
		// curve applies per library call.
		perCall := k.FLOPs / calls
		eff := c.GemmEffMax * perCall / (perCall + c.EffHalfFLOPs)
		compute = k.FLOPs / (c.PeakFLOPS * eff)
	case k.FLOPs > 0:
		// Element-wise / streaming layer loop (activations, pooling,
		// LRN, locally-connected accumulation).
		compute = k.FLOPs / c.ElemFLOPS
	}
	var dram float64
	if total := k.Bytes(); total > c.LLCBytes {
		dram = total / c.MemBW
	}
	t := compute
	if dram > t {
		t = dram
	}
	return t + calls*c.CallOverhead
}

// ForwardTime returns the single-core time for a network forward pass
// described by its kernel sequence.
func (c CoreSpec) ForwardTime(ks []nn.Kernel) float64 {
	var t float64
	for _, k := range ks {
		t += c.KernelTime(k)
	}
	return t
}

// ScalarTime converts a pre/post-processing operation count into core
// seconds.
func (c CoreSpec) ScalarTime(ops float64) float64 { return ops / c.ScalarFLOPS }
