package djinn_test

import (
	"fmt"
	"strings"

	"djinn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

// The smallest end-to-end use: an in-process DjiNN server with the
// digit-recognition model, queried through the Tonic application.
func Example() {
	srv := djinn.NewServer()
	if err := djinn.RegisterApp(srv, djinn.DIG); err != nil {
		panic(err)
	}
	defer srv.Close()

	dig := djinn.NewDIG(srv)
	images, _ := workload.Digits(tensor.NewRNG(1), 3)
	preds, err := dig.Recognize(images)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(preds), "digits classified")
	// Output: 3 digits classified
}

// Registering a custom application from a network-definition file —
// no code changes to the service.
func ExampleRegisterFromDef() {
	def := `
name: "toy"
type: DNN
input: 16
layer l1   fc      { out: 8 }
layer act  relu    { }
layer l2   fc      { out: 2 }
layer prob softmax { }
`
	srv := djinn.NewServer()
	defer srv.Close()
	if err := djinn.RegisterFromDef(srv, "toy", strings.NewReader(def), nil, djinn.AppConfig{}); err != nil {
		panic(err)
	}
	out, err := srv.Infer("toy", make([]float32, 16))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d classes, total probability %.0f\n", len(out), out[0]+out[1])
	// Output: 2 classes, total probability 1
}

// The evaluation platform regenerates the paper's figures as data.
func ExampleNewPlatform() {
	p := djinn.NewPlatform()
	for _, row := range p.Fig5() {
		if row.App == djinn.ASR {
			fmt.Printf("ASR baseline GPU speedup is in the paper's ~120x band: %v\n",
				row.Speedup > 95 && row.Speedup < 145)
		}
	}
	// Output: ASR baseline GPU speedup is in the paper's ~120x band: true
}

// Tagging a sentence with the SENNA-based part-of-speech application.
func ExampleNewPOS() {
	srv := djinn.NewServer()
	if err := djinn.RegisterApp(srv, djinn.POS); err != nil {
		panic(err)
	}
	defer srv.Close()
	tagged, err := djinn.NewPOS(srv).Tag("DjiNN serves deep neural networks")
	if err != nil {
		panic(err)
	}
	fmt.Println(len(tagged), "words tagged")
	// Output: 5 words tagged
}
