// Package djinn is the public API of this reproduction of "DjiNN and
// Tonic: DNN as a Service and Its Implications for Future Warehouse
// Scale Computers" (ISCA 2015).
//
// It exposes three layers:
//
//   - The DjiNN service: a TCP DNN-inference server hosting the seven
//     Tonic Suite models with cross-request batching and shared
//     read-only weights (NewServer, Dial).
//
//   - The Tonic Suite applications: end-to-end image classification,
//     digit recognition, facial recognition, speech recognition and
//     NLP tagging pipelines over a DjiNN backend (NewIMC … NewNER).
//
//   - The evaluation platform: calibrated CPU/GPU/WSC performance
//     models that regenerate every table and figure of the paper
//     (NewPlatform, the Fig*/Table* methods).
//
// See README.md for a quickstart and DESIGN.md for the system map.
package djinn

import (
	"context"
	"io"
	"net/http"

	"djinn/internal/admin"
	"djinn/internal/experiments"
	"djinn/internal/gateway"
	"djinn/internal/metrics"
	"djinn/internal/models"
	"djinn/internal/modelstore"
	"djinn/internal/nn"
	"djinn/internal/pipeline"
	"djinn/internal/router"
	"djinn/internal/sched"
	"djinn/internal/service"
	"djinn/internal/tonic"
	"djinn/internal/trace"
)

// App identifies one of the seven Tonic Suite applications.
type App = models.App

// The Tonic Suite applications, in Table 1 order.
const (
	IMC  = models.IMC
	DIG  = models.DIG
	FACE = models.FACE
	ASR  = models.ASR
	POS  = models.POS
	CHK  = models.CHK
	NER  = models.NER
)

// Apps lists every application.
var Apps = models.Apps

// ParseApp converts "IMC", "ASR", ... to an App.
func ParseApp(s string) (App, error) { return models.ParseApp(s) }

// Server is the DjiNN service (model registry + TCP front end +
// batching worker pools).
type Server = service.Server

// AppConfig tunes one registered application's batching and workers.
// Setting its SLO enables the scheduler: SLO-aware admission control
// and adaptive batching within [1, BatchInstances] (see internal/sched
// and the README's Scheduling section).
type AppConfig = service.AppConfig

// Priority is an application's tenant class at the server's cross-app
// execution gate (Server.SetSchedSlots).
type Priority = sched.Priority

// The scheduler's priority classes, in ascending weight (1/2/4) at the
// execution gate.
const (
	Throughput      = sched.Throughput
	Standard        = sched.Standard
	LatencyCritical = sched.LatencyCritical
)

// SchedInfo is a point-in-time snapshot of one app's scheduler (live
// batch size, flush window, admission counters); see Server.SchedFor
// and Client.ServerSched.
type SchedInfo = sched.Info

// Precision selects the kernel backend an application's execution plans
// compile against (AppConfig.Precision, nn.CompileOpts.Precision).
type Precision = nn.Precision

// The kernel precisions: the reference float32 path, the panel-packing
// float32 kernels (bit-identical outputs, better cache behaviour), and
// the quantized int8 path (dynamic activation scales, int32
// accumulation, ~99%+ top-1 agreement with float32).
const (
	Float32       = nn.Float32
	Float32Packed = nn.Float32Packed
	Int8          = nn.Int8
)

// ParsePrecision converts "float32"/"fp32", "float32-packed"/"packed",
// "int8"/"quant" to a Precision.
func ParsePrecision(s string) (Precision, error) { return nn.ParsePrecision(s) }

// Client is a TCP client for a remote DjiNN server.
type Client = service.Client

// Backend is anything that answers DjiNN inference queries: a *Client
// (remote) or a *Server (in-process).
type Backend = service.Backend

// ContextBackend is a Backend that additionally accepts a
// context.Context per query (InferCtx), letting callers attach
// deadlines and cancellation. Both *Client and *Server implement it.
type ContextBackend = service.ContextBackend

// Stats are one application's lifecycle counters (queries, batches,
// shed, expired, errors).
type Stats = service.Stats

// StageSummary is the per-stage latency breakdown a server records for
// each query: queue wait, batch assembly, forward pass, respond.
type StageSummary = metrics.StageSummary

// Sentinel errors for the request lifecycle. Match with errors.Is:
// they survive the wire, so a remote Client returns the same values an
// in-process Server does.
var (
	// ErrDeadlineExceeded: the query's deadline expired before the
	// forward pass ran (or the caller's context was cancelled).
	ErrDeadlineExceeded = service.ErrDeadlineExceeded
	// ErrShuttingDown: the server is draining; the query was rejected.
	ErrShuttingDown = service.ErrShuttingDown
	// ErrOverloaded: the query was shed before entering the queue —
	// the application's queue was full, or its admission controller
	// estimated the deadline could not be met. Retryable on another
	// replica; the Router treats it as backpressure.
	ErrOverloaded = service.ErrOverloaded
	// ErrTransport: the connection to a server failed mid-exchange (or
	// could not be established). Retryable on another replica.
	ErrTransport = service.ErrTransport
)

// NewServer creates an empty DjiNN server; register applications with
// RegisterApp or RegisterAll before serving.
func NewServer() *Server { return service.NewServer() }

// Dial connects to a DjiNN server.
func Dial(addr string) (*Client, error) { return service.Dial(addr) }

// DefaultDial is the TCP dialer Dial uses; pass it (or a custom
// DialFunc) to a Router's AddAddr.
var DefaultDial = service.DefaultDial

// Router is the client-side multi-backend dispatch tier: it fans
// queries across replica backends with per-replica health tracking,
// probe-based recovery, and deadline-aware retry. It implements
// ContextBackend, so every Tonic application runs over a fleet
// unchanged.
type Router = router.Router

// RouterConfig tunes a Router's dispatch policy, retry budget, and
// health thresholds.
type RouterConfig = router.Config

// BackendSnapshot is one replica's health and counters in
// Router.Stats().
type BackendSnapshot = router.BackendSnapshot

// The Router's dispatch policies.
const (
	RoundRobin       = router.RoundRobin
	LeastOutstanding = router.LeastOutstanding
	PowerOfTwo       = router.PowerOfTwo
)

// NewRouter creates a Router; add replicas with AddBackend (in-process
// or pre-dialed backends) or AddAddr (TCP, with pooled connections).
func NewRouter(cfg RouterConfig) *Router { return router.New(cfg) }

// RegisterApp loads one application's model into a server with the
// paper's Table 3 batching configuration.
func RegisterApp(s *Server, app App) error { return tonic.Register(s, app) }

// RegisterAppPrecision is RegisterApp with an explicit kernel
// precision: the app's whole plan pool compiles against the selected
// backend.
func RegisterAppPrecision(s *Server, app App, prec Precision) error {
	return tonic.RegisterPrecision(s, app, prec)
}

// RegisterAll loads all seven Tonic models (~850 MB of weights).
func RegisterAll(s *Server) error { return tonic.RegisterAll(s) }

// ServiceName returns the registry name an application uses on the
// wire ("imc", "dig", ...).
func ServiceName(app App) string { return tonic.ServiceName(app) }

// RegisterFromDef loads a custom application from a network-definition
// file (see internal/nn's netdef format) and optional trained weights,
// registering it under name — the paper's extensibility story:
// "supporting more applications simply requires providing DjiNN a
// pretrained neural network model".
func RegisterFromDef(s *Server, name string, def io.Reader, weights io.Reader, cfg AppConfig) error {
	net, err := nn.ParseNetDef(def, 1)
	if err != nil {
		return err
	}
	if weights != nil {
		if err := net.LoadWeights(weights); err != nil {
			return err
		}
	}
	return s.Register(name, net, cfg)
}

// Tonic Suite applications. Each wraps a Backend with the app's real
// pre/post-processing.
type (
	// ImageClassifier is IMC: AlexNet over 1000 classes.
	ImageClassifier = tonic.IMC
	// DigitRecognizer is DIG: 100-image MNIST queries.
	DigitRecognizer = tonic.DIG
	// FaceIdentifier is FACE: DeepFace over 83 identities.
	FaceIdentifier = tonic.FACE
	// SpeechRecognizer is ASR: feature extraction, Kaldi-style acoustic
	// scoring, Viterbi decoding.
	SpeechRecognizer = tonic.ASR
	// POSTagger, Chunker and EntityRecognizer are the SENNA-based NLP
	// applications.
	POSTagger        = tonic.POS
	Chunker          = tonic.CHK
	EntityRecognizer = tonic.NER

	// Prediction is a classification result.
	Prediction = tonic.Prediction
	// TaggedWord is one word with its predicted tag.
	TaggedWord = tonic.TaggedWord
	// Transcription is a decoded utterance.
	Transcription = tonic.Transcription
)

// Application constructors.
func NewIMC(b Backend) *ImageClassifier  { return tonic.NewIMC(b) }
func NewDIG(b Backend) *DigitRecognizer  { return tonic.NewDIG(b) }
func NewFACE(b Backend) *FaceIdentifier  { return tonic.NewFACE(b) }
func NewASR(b Backend) *SpeechRecognizer { return tonic.NewASR(b) }
func NewPOS(b Backend) *POSTagger        { return tonic.NewPOS(b) }
func NewCHK(b Backend) *Chunker          { return tonic.NewCHK(b) }
func NewNER(b Backend) *EntityRecognizer { return tonic.NewNER(b) }

// Trace is one request's recorded span timeline as seen by one tier
// (or several tiers, after MergeTraces).
type Trace = trace.Trace

// TraceStore is a bounded in-memory span store; each tier of a process
// (the router, each server replica) owns one.
type TraceStore = trace.Store

// NewTraceID mints a request trace ID. Attach it to a query's context
// with WithTraceID and every hop (router attempt, queue, batch,
// forward, respond) records spans under it.
func NewTraceID() string { return trace.NewID() }

// WithTraceID attaches a trace ID to a query context; Client and Router
// lower it onto the wire so remote tiers annotate under the same ID.
func WithTraceID(ctx context.Context, id string) context.Context { return trace.WithID(ctx, id) }

// NewTraceStore creates a bounded trace store labelled with tier.
// capacity <= 0 means the default (1024 traces).
func NewTraceStore(tier string, capacity int) *TraceStore { return trace.NewStore(tier, capacity) }

// MergeTraces combines one request's spans across tiers (e.g. the
// router's store plus each replica's) into a single timeline whose span
// names are prefixed "tier/".
func MergeTraces(id string, stores ...*TraceStore) (Trace, bool) { return trace.Merge(id, stores...) }

// AdminOptions selects what a process's admin HTTP plane exports.
type AdminOptions = admin.Options

// AdminReplica pairs one in-process server with its exported name.
type AdminReplica = admin.Replica

// NewAdminHandler builds the admin HTTP handler: Prometheus text on
// /metrics, pprof under /debug/pprof/, the slow-query log on /slowlog,
// and merged per-request timelines on /trace?id=.
func NewAdminHandler(opts AdminOptions) http.Handler { return admin.NewHandler(opts) }

// ModelRegistry is the model store's lifecycle manager: it tracks
// registered weight files, loads (mmaps) them on demand under a
// configurable residency budget, pins models while queries are in
// flight, and LRU-evicts cold ones. Attach one to a Server with
// AttachModelStore and any registered model becomes servable by name.
type ModelRegistry = modelstore.Registry

// ModelRegistryConfig tunes a ModelRegistry (residency budget in
// bytes, warm-on-load).
type ModelRegistryConfig = modelstore.Config

// ModelID names one model version ("imc@v2"); a bare name resolves to
// the newest registered version.
type ModelID = modelstore.ID

// ModelInfo is one registered model's listing entry (residency, pins,
// bytes, parameter count).
type ModelInfo = modelstore.Info

// ModelStats are a registry's counters: residency gauges plus
// lifetime loads, first-query faults, evictions, and load errors —
// the djinn_model_* metrics family.
type ModelStats = modelstore.Stats

// NewModelRegistry creates an empty model registry.
func NewModelRegistry(cfg ModelRegistryConfig) *ModelRegistry { return modelstore.NewRegistry(cfg) }

// ParseModelID parses "name" or "name@vN".
func ParseModelID(s string) (ModelID, error) { return modelstore.ParseID(s) }

// ExportModels writes the given Tonic applications' networks to dir as
// versioned .djw weight files ("imc@v1.djw", ...) and returns the
// paths. The files round-trip bit-identically: a server loading them
// through a ModelRegistry answers exactly like one built from seeds.
func ExportModels(dir string, apps []App, version int) ([]string, error) {
	return modelstore.ExportTonic(dir, apps, version)
}

// ExportModelsQuantized is ExportModels emitting version-2 weight files
// whose conv/FC weights carry checksummed int8 quantized sections: a
// server opening them serves Int8 plans with quantization already paid
// at export time (stored and on-the-fly quantized weights are
// bit-identical).
func ExportModelsQuantized(dir string, apps []App, version int) ([]string, error) {
	return modelstore.ExportTonicOpts(dir, apps, version, modelstore.WriteOptions{Quantize: true})
}

// VerifyModelFile validates one .djw file end to end — header and
// per-section checksums, manifest/netdef agreement — without mapping
// it, and returns its metadata.
func VerifyModelFile(path string) (*modelstore.Meta, error) { return modelstore.VerifyFile(path) }

// SplitTarget is one arm of a Router traffic split (see
// Router.SetSplit): Weight parts of the base app's traffic go to
// Target, typically a versioned model ID like "imc@v2".
type SplitTarget = router.SplitTarget

// SplitStatus is one split arm plus its routed-query counter
// (Router.Splits).
type SplitStatus = router.SplitStatus

// Platform is the paper's evaluation platform (Table 2): the Xeon core
// baseline, the K40 GPU model and the host interconnect. Its Fig* and
// Render* methods regenerate the paper's evaluation.
type Platform = experiments.Platform

// NewPlatform returns the calibrated Table 2 platform.
func NewPlatform() Platform { return experiments.DefaultPlatform() }

// Gateway is the HTTP/JSON front-end tier: JSON requests in, DJRT
// queries out, with a content-addressed response cache, per-tenant
// rate limits, and server-side pipelines (see internal/gateway).
type Gateway = gateway.Gateway

// GatewayConfig configures a Gateway: the backend it fronts, the
// app table, cache and rate-limit policy, body caps, and tracing.
type GatewayConfig = gateway.Config

// GatewayCacheConfig sizes the gateway's content-addressed response
// cache (byte budget + TTL).
type GatewayCacheConfig = gateway.CacheConfig

// GatewayLimitConfig is the per-tenant token-bucket rate limit
// applied at gateway admission.
type GatewayLimitConfig = gateway.LimitConfig

// NewGateway builds a Gateway over a backend (a Server, Client, or
// Router).
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// PipelineSpec declares a server-side DAG of Tonic stages; run it
// with a PipelineRunner or POST it to a gateway's /v1/pipeline.
type PipelineSpec = pipeline.Spec

// PipelineStage is one node of a PipelineSpec: a named Tonic app plus
// the stages it waits on.
type PipelineStage = pipeline.StageSpec

// PipelineRunner executes pipeline specs over a backend, recording
// per-stage trace spans and stats.
type PipelineRunner = pipeline.Runner

// PipelinePreset returns a named built-in pipeline ("asr-pos-ner",
// "asr-chk").
func PipelinePreset(name string) (PipelineSpec, bool) { return pipeline.Preset(name) }

// NewPipelineRunner builds a runner over a context-aware backend;
// traces may be nil.
func NewPipelineRunner(b ContextBackend, traces *TraceStore) *PipelineRunner {
	return pipeline.NewRunner(b, traces)
}
