module djinn

go 1.22
