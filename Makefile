GO ?= go

.PHONY: check vet build test race bench

# check runs everything CI should gate on: vet, a full build, the full
# test suite (tier-1), and race-detector runs for the concurrency-heavy
# packages (the serving path, the scheduler, the multi-backend router,
# the load drivers, and their metrics).
check: vet build test race

# vet is static analysis plus a formatting gate: gofmt -l prints the
# files that need reformatting, so any output fails the target.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/... ./internal/sched/... ./internal/metrics/... ./internal/router/... ./internal/workload/... ./internal/trace/... ./internal/admin/...

bench:
	$(GO) test -bench=. -benchmem ./...
