GO ?= go

# Benchmark knobs: BENCH_COUNT repeated runs (benchstat wants ≥ 5
# samples per benchmark to judge significance), BENCH_TIME per
# measurement, BENCH_PKGS the engine-path packages that carry the
# forward-pass benchmarks.
BENCH_COUNT ?= 5
BENCH_TIME  ?= 200ms
BENCH_PKGS  ?= ./internal/tensor/... ./internal/nn/... ./internal/models/...

.PHONY: check vet build test race bench bench-all benchcmp models dash gateway

# check runs everything CI should gate on: vet, a full build, the full
# test suite (tier-1), and race-detector runs for the concurrency-heavy
# packages (the serving path, the scheduler, the multi-backend router,
# the load drivers, their metrics, and the engine's parallel GEMM /
# shared-plan paths).
check: vet build test race

# vet is static analysis plus a formatting gate: gofmt -l prints the
# files that need reformatting, so any output fails the target.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/models/... ./internal/modelstore/... ./internal/service/... ./internal/sched/... ./internal/metrics/... ./internal/router/... ./internal/workload/... ./internal/trace/... ./internal/admin/... ./internal/controlplane/... ./internal/timeseries/... ./internal/events/... ./internal/alerts/... ./internal/gateway/... ./internal/pipeline/...

# dash is an observability smoke test: the obsfleet experiment stands
# up an observed three-replica fleet, kills an assignee mid-load, and
# prints the journaled alert lifecycle, the merged-histogram fleet
# p99, and the collector's overhead accounting.
dash:
	$(GO) run ./cmd/djinn-bench -exp obsfleet

# gateway is an HTTP-tier smoke test: boot djinn-service with the
# JSON gateway enabled, POST the same POS query twice, and show the
# second response served from the content-addressed cache
# (`"cached":true`), then shut the service down.
gateway:
	@$(GO) build -o /tmp/djinn-service-smoke ./cmd/djinn-service
	@/tmp/djinn-service-smoke -apps POS -addr 127.0.0.1:7424 -http 127.0.0.1:7423 & \
	pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; \
	sleep 2; \
	body='{"app":"pos","text":"the quick brown fox jumps over the lazy dog"}'; \
	echo "first request (cache fill):"; \
	curl -sf -X POST -d "$$body" http://127.0.0.1:7423/v1/infer; echo; \
	echo "second request (cache hit):"; \
	out=$$(curl -sf -X POST -d "$$body" http://127.0.0.1:7423/v1/infer); echo "$$out"; echo; \
	echo "$$out" | grep -q '"cached":true' && echo "gateway smoke: OK (served from cache)" \
		|| { echo "gateway smoke: FAILED (second response not cached)"; exit 1; }

# models exports all seven Tonic networks as versioned .djw weight
# files (~850 MB, a one-time cost) and verifies every checksum, so a
# store-backed server (`djinn-service -models $(MODELS_DIR)`) can boot
# without building a single model. Override MODELS_DIR to choose the
# destination.
MODELS_DIR ?= ./models-export
models:
	$(GO) run ./cmd/djinn-service -export-models $(MODELS_DIR) -apps all
	$(GO) run ./cmd/djinn-service -verify-models $(MODELS_DIR)

# bench emits benchstat-friendly output for the engine hot path: pipe
# two runs into `benchstat old.txt new.txt` to compare. Example:
#   make bench > new.txt
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) $(BENCH_PKGS)

# bench-all sweeps every package's benchmarks once (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# benchcmp benchmarks the working tree against a git ref (BENCH_REF,
# default HEAD^) on the BENCH_PKGS hot path and compares the two runs
# through benchstat when it is installed, falling back to printing both
# raw outputs when it is not. The ref runs from a throwaway worktree,
# so the working tree (including uncommitted changes) is untouched.
# Example: make benchcmp BENCH_REF=v0-seed BENCH_COUNT=5
BENCH_REF ?= HEAD^
benchcmp:
	@tmp=$$(mktemp -d); \
	trap 'git worktree remove --force "$$tmp/ref" 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	git worktree add --detach "$$tmp/ref" $(BENCH_REF) >/dev/null || exit 1; \
	echo "benchcmp: benchmarking $(BENCH_REF) ..."; \
	( cd "$$tmp/ref" && $(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) $(BENCH_PKGS) ) > "$$tmp/old.txt" || { cat "$$tmp/old.txt"; exit 1; }; \
	echo "benchcmp: benchmarking working tree ..."; \
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) $(BENCH_PKGS) > "$$tmp/new.txt" || { cat "$$tmp/new.txt"; exit 1; }; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat "$$tmp/old.txt" "$$tmp/new.txt"; \
	else \
		echo "benchcmp: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw outputs:"; \
		echo "--- $(BENCH_REF)"; cat "$$tmp/old.txt"; \
		echo "--- working tree"; cat "$$tmp/new.txt"; \
	fi
