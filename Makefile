GO ?= go

.PHONY: check vet build test race bench

# check runs everything CI should gate on: vet, a full build, the full
# test suite (tier-1), and race-detector runs for the concurrency-heavy
# packages (the serving path, the multi-backend router, the load
# drivers, and their metrics).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/... ./internal/metrics/... ./internal/router/... ./internal/workload/... ./internal/trace/... ./internal/admin/...

bench:
	$(GO) test -bench=. -benchmem ./...
